package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// PairedAnalyzer is the interprocedural must-release rule: every call to an
// acquire function in Policy.PairedSpecs creates an obligation that must be
// discharged on every CFG path out of the acquiring function — by a paired
// release, a defer of one, an escape into a struct field that some function
// in the module releases, a return that hands ownership to the caller, or
// an argument pass that transfers it to a callee.
func PairedAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "paired",
		Doc:  "acquired resources (pinned memory, VI slots, subscriptions, bundle writers) are released on every path",
		Explain: `docs/ARCHITECTURE.md, the pinned-memory limit and VI-slot cap: registered
memory and VI endpoints are the scarce resources the paper's scalability
argument is about (Table 2's VI utilization; the eager-pool registration
budget), so a code path that acquires one and can return without releasing
it is a leak that no test observes until the budget runs out. Each
Policy.PairedSpecs entry declares an acquire/release pair
(MemoryRegistry.Register/Deregister, Port.CreateVi/VI.Close,
Bus.Subscribe/Unsubscribe, capture.NewWriter/Writer.Close,
Port.RegisterRdmaTarget/ReleaseRdmaTarget). The rule runs a per-function
may-analysis over the shared CFG: an obligation is discharged by a release
rooted at the handle (also behind an "!= nil" guard or a defer), killed on
the acquire's own error path, or transferred — into a struct field
(tracked module-wide: some function must release through that field), to
the caller via return (the caller inherits the obligation — wrapper
functions become acquire sites themselves), or to a callee as an argument.
A path that reaches return still holding the obligation, a discarded
acquire result, and a second release of an already-released handle are
each diagnosed. Reviewed exceptions (run-scoped handles reaped wholesale
at process death) live in Policy.PairedAllow with their justification.`,
		Run: runPaired,
	}
}

// prObligation is one acquire site being tracked through a unit body.
type prObligation struct {
	spec     int
	node     ast.Node // the CFG-level statement containing the acquire
	pos      token.Pos
	objs     map[types.Object]bool // locals that hold the handle
	errObj   types.Object          // the error result bound at the acquire, if any
	acquired string                // qualified name of the acquire callee
	deferRel bool                  // discharged by a deferred release
	retOwned bool                  // escapes to the caller via return
	released bool                  // some non-deferred release roots at it
	leaked   bool                  // a path reaches exit still holding it
}

// prFieldStore is one handle stored into a struct field, resolved globally.
type prFieldStore struct {
	spec     int
	field    string // policy-qualified "rel/pkg.(Owner).field"
	pos      token.Pos
	acquired string
}

// prResult accumulates one whole-module pass.
type prResult struct {
	diags       []Diagnostic
	stores      []prFieldStore
	releasedFld map[string]bool // "spec#field" discharged by some release site
	retOwned    map[string]int  // function key -> spec it returns ownership of
}

func runPaired(m *Module, p *Policy) []Diagnostic {
	if len(p.PairedSpecs) == 0 {
		return nil
	}
	ip := m.Interproc()

	// acquires/releases: qualified callee -> spec index. Derived acquires
	// (functions that return ownership of a handle they acquired) are added
	// between rounds until the set is stable.
	acquires := map[string]int{}
	releases := map[string]int{}
	primary := map[string]bool{}
	for i, spec := range p.PairedSpecs {
		for _, a := range spec.Acquires {
			acquires[a] = i
			primary[a] = true
		}
		for _, r := range spec.Releases {
			releases[r] = i
			primary[r] = true
		}
	}

	var res prResult
	for {
		ip.Sweeps++
		res = prAnalyzeModule(m, ip, p, acquires, releases, primary)
		grew := false
		for _, key := range sortedIntKeys(res.retOwned) {
			if _, known := acquires[key]; !known && !primary[key] {
				acquires[key] = res.retOwned[key]
				grew = true
			}
		}
		if !grew {
			break
		}
	}

	ds := res.diags
	// Global field pass: every handle parked in a struct field needs some
	// release in the module that discharges through that field.
	for _, st := range res.stores {
		if res.releasedFld[fmt.Sprintf("%d#%s", st.spec, st.field)] {
			continue
		}
		spec := p.PairedSpecs[st.spec]
		ds = append(ds, Diagnostic{
			Pos:  m.Position(st.pos),
			Rule: "paired",
			Message: fmt.Sprintf("%s from %s is stored into %s, but no function releases through that field — add a releasing path calling %s, or justify in Policy.PairedAllow",
				spec.Resource, st.acquired, st.field, prJoin(spec.Releases)),
		})
	}
	return ds
}

// prAnalyzeModule runs one whole-module round with the current acquire set.
func prAnalyzeModule(m *Module, ip *Interproc, p *Policy, acquires, releases map[string]int, primary map[string]bool) prResult {
	res := prResult{
		releasedFld: map[string]bool{},
		retOwned:    map[string]int{},
	}
	for _, key := range ip.Keys {
		f := ip.Funcs[key]
		if _, allowed := p.PairedAllow[key]; allowed {
			continue
		}
		for _, u := range f.Units {
			prAnalyzeUnit(m, p, f, u, key, acquires, releases, primary, &res)
		}
	}
	return res
}

func prAnalyzeUnit(m *Module, p *Policy, f *IPFunc, u funcUnit, key string, acquires, releases map[string]int, primary map[string]bool, res *prResult) {
	info := f.Pkg.Info
	qualOf := func(call *ast.CallExpr) string {
		obj := calleeObject(info, call)
		if obj == nil {
			return ""
		}
		return relQualified(m.Path, objectQualifiedName(obj))
	}

	parent := prParentMap(u.body)
	cfgNodes := prCFGNodeSet(u.body)
	// cfgStmt walks from an inner node up to the statement (or condition
	// expression) the dataflow records states for.
	cfgStmt := func(n ast.Node) ast.Node {
		for n != nil {
			if cfgNodes[n] {
				return n
			}
			n = parent[n]
		}
		return nil
	}

	// Field-rooted locals: a local bound from a field selector (x := s.f,
	// for _, x := range s.f, x := s.f[i]) releases through that field.
	fieldLocal := map[types.Object]string{}
	bindField := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj == nil {
			return
		}
		if fk := prFieldKeyOf(m, info, rhs); fk != "" {
			fieldLocal[obj] = fk
		}
	}
	inspectSkipLits(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					bindField(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				bindField(n.Value, n.X)
			}
		}
		return true
	})

	// Release sites discharge field obligations module-wide: any field
	// mentioned in the receiver chain or arguments of a release call (or a
	// field a local argument was bound from) counts as released. This runs
	// for every unit, including units of functions being skipped for local
	// obligations, because the releasing method is usually not the storer.
	inspectSkipLits(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		spec, isRel := releases[qualOf(call)]
		if !isRel {
			return true
		}
		mark := func(fk string) {
			if fk != "" {
				res.releasedFld[fmt.Sprintf("%d#%s", spec, fk)] = true
			}
		}
		ast.Inspect(call, func(cn ast.Node) bool {
			switch cn := cn.(type) {
			case *ast.SelectorExpr:
				mark(prSelectorFieldKey(m, info, cn))
			case *ast.Ident:
				if obj := info.Uses[cn]; obj != nil {
					mark(fieldLocal[obj])
				}
			}
			return true
		})
		return true
	})

	// Collect obligations: acquire calls classified by their binding context.
	var obs []*prObligation
	inspectSkipLits(u.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		qual := qualOf(call)
		spec, isAcq := acquires[qual]
		if !isAcq || qual == key {
			return true // not an acquire, or the pair's own implementation
		}
		specDesc := p.PairedSpecs[spec]
		switch ctx := parent[call].(type) {
		case *ast.ExprStmt:
			res.diags = append(res.diags, Diagnostic{
				Pos:  m.Position(call.Pos()),
				Rule: "paired",
				Message: fmt.Sprintf("result of %s is discarded, so the %s can never be released — bind the handle and release it (%s), or justify in Policy.PairedAllow",
					qual, specDesc.Resource, prJoin(specDesc.Releases)),
			})
		case *ast.ReturnStmt:
			// Ownership moves to the caller. Only a declaration body makes a
			// wrapper summary: a literal returns to whoever invokes the
			// closure, which the call graph cannot see.
			if u.lit == nil && !primary[key] {
				res.retOwned[key] = spec
			}
		case *ast.AssignStmt, *ast.ValueSpec:
			targets, errObj := prAcquireTargets(info, ctx, call)
			objs := map[types.Object]bool{}
			allBlank := true
			for _, t := range targets {
				switch t := t.(type) {
				case *ast.Ident:
					if t.Name == "_" {
						continue
					}
					allBlank = false
					if obj := info.Defs[t]; obj != nil {
						objs[obj] = true
					} else if obj := info.Uses[t]; obj != nil {
						objs[obj] = true
					}
				default:
					allBlank = false
					if fk := prFieldKeyOf(m, info, t); fk != "" {
						res.stores = append(res.stores, prFieldStore{spec: spec, field: fk, pos: call.Pos(), acquired: qual})
					}
				}
			}
			if allBlank {
				res.diags = append(res.diags, Diagnostic{
					Pos:  m.Position(call.Pos()),
					Rule: "paired",
					Message: fmt.Sprintf("result of %s is discarded, so the %s can never be released — bind the handle and release it (%s), or justify in Policy.PairedAllow",
						qual, specDesc.Resource, prJoin(specDesc.Releases)),
				})
				return true
			}
			if len(objs) == 0 {
				return true // stored straight into fields; the global pass owns it
			}
			site := cfgStmt(call)
			if site == nil {
				return true
			}
			obs = append(obs, &prObligation{
				spec: spec, node: site, pos: call.Pos(),
				objs: objs, errObj: errObj, acquired: qual,
			})
		}
		return true
	})

	if len(obs) == 0 {
		return
	}
	if len(obs) > 32 {
		obs = obs[:32] // bitset width; no real unit approaches this
	}

	// Alias closure: plain ident-to-ident copies extend the handle set.
	for pass := 0; pass < 2; pass++ {
		inspectSkipLits(u.body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Lhs {
				lhs, lok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				rhs, rok := ast.Unparen(as.Rhs[i]).(*ast.Ident)
				if !lok || !rok || lhs.Name == "_" {
					continue
				}
				src := info.Uses[rhs]
				dst := info.Defs[lhs]
				if dst == nil {
					dst = info.Uses[lhs]
				}
				if src == nil || dst == nil {
					continue
				}
				for _, ob := range obs {
					if ob.objs[src] {
						ob.objs[dst] = true
					}
				}
			}
			return true
		})
	}

	// Deferred releases discharge everywhere (defers run on every exit,
	// including panics), and defers of closures releasing the handle count.
	inspectSkipLits(u.body, func(n ast.Node) bool {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return true
		}
		for _, ob := range obs {
			if prContainsRelease(info, m, def, releases, ob) {
				ob.deferRel = true
			}
		}
		return true
	})

	// Per-node effects: for each obligation, bit 2i = outstanding, bit 2i+1
	// = released on some incoming path.
	type prEffect struct {
		acquire bool
		release bool
		clear   bool // escape, transfer, or error-path kill
	}
	effects := map[ast.Node][]prEffect{}
	effectAt := func(n ast.Node, i int) *prEffect {
		row := effects[n]
		if row == nil {
			row = make([]prEffect, len(obs))
			effects[n] = row
		}
		return &row[i]
	}
	for i, ob := range obs {
		effectAt(ob.node, i).acquire = true
	}

	// Error-path kills and nil-guard releases hang off if statements.
	inspectSkipLits(u.body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		lhs, op, ok := prNilCompare(ifs.Cond)
		if !ok {
			return true
		}
		id, isIdent := ast.Unparen(lhs).(*ast.Ident)
		if !isIdent {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		for i, ob := range obs {
			if obj == ob.errObj {
				// The acquire failed on this branch: no resource to release.
				switch {
				case op == token.NEQ:
					for _, s := range ifs.Body.List {
						effectAt(s, i).clear = true
					}
				case op == token.EQL && ifs.Else != nil:
					prMarkBranch(ifs.Else, func(s ast.Stmt) { effectAt(s, i).clear = true })
				}
			}
			if ob.objs[obj] && op == token.NEQ && prContainsRelease(info, m, ifs.Body, releases, ob) {
				// "if h != nil { release(h) }": acquired implies non-nil, so
				// both branches discharge. The condition is the CFG node.
				effectAt(ifs.Cond, i).clear = true
			}
		}
		return true
	})

	// Releases, returns, escapes, transfers.
	inspectSkipLits(u.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			return false // deferred effects already folded in
		case *ast.CallExpr:
			qual := qualOf(n)
			if spec, isRel := releases[qual]; isRel {
				site := cfgStmt(n)
				for i, ob := range obs {
					if ob.spec != spec || site == nil {
						continue
					}
					if prRootedAt(info, n, ob.objs) {
						effectAt(site, i).release = true
						ob.released = true
					}
				}
				return true
			}
			if _, isAcq := acquires[qual]; isAcq {
				return true
			}
			// Handle passed as an argument: ownership transfers to the
			// callee (receivers are reads, not transfers).
			site := cfgStmt(n)
			for i, ob := range obs {
				if site == nil {
					continue
				}
				for _, arg := range n.Args {
					if prMentions(info, arg, ob.objs) {
						effectAt(site, i).clear = true
						break
					}
				}
			}
		case *ast.ReturnStmt:
			for i, ob := range obs {
				if !prMentions(info, n, ob.objs) {
					continue
				}
				effectAt(n, i).clear = true
				if prContainsRelease(info, m, n, releases, ob) {
					continue // "return h.Close()" releases; nothing transfers
				}
				if u.lit == nil && !primary[key] {
					ob.retOwned = true
					res.retOwned[key] = ob.spec
				} else {
					ob.retOwned = true // literal: caller unknown, stay silent
				}
			}
		case *ast.AssignStmt:
			// Handle stored through a selector/index, or captured by a
			// composite literal: the obligation escapes this function.
			for i, ob := range obs {
				if n == ob.node {
					continue
				}
				escaped := false
				for j, l := range n.Lhs {
					if _, isIdent := ast.Unparen(l).(*ast.Ident); isIdent {
						continue
					}
					// Only a store of the handle itself (conversions and &
					// unwrapped) escapes; "res.Events = cw.Events()" stores a
					// stat read, not the writer.
					var r ast.Expr
					if len(n.Rhs) == len(n.Lhs) {
						r = n.Rhs[j]
					} else if len(n.Rhs) == 1 {
						r = n.Rhs[0]
					}
					if r == nil || !prIsHandle(info, r, ob.objs) {
						continue
					}
					escaped = true
					if fk := prFieldKeyOf(m, info, l); fk != "" {
						res.stores = append(res.stores, prFieldStore{spec: ob.spec, field: fk, pos: n.Pos(), acquired: ob.acquired})
					}
				}
				for _, r := range n.Rhs {
					for _, st := range prCompositeStores(m, info, r, ob) {
						res.stores = append(res.stores, st)
						escaped = true
					}
				}
				if escaped {
					if site := cfgStmt(n); site != nil {
						effectAt(site, i).clear = true
					}
				}
			}
		}
		return true
	})

	// Dataflow. Effect precedence per node: release beats clear (a release
	// inside a return statement is a release), acquire applies last so an
	// acquire node leaves its own obligation outstanding.
	transfer := func(node ast.Node, in uint64) uint64 {
		row, ok := effects[node]
		if !ok {
			return in
		}
		out := in
		for i := range obs {
			e := row[i]
			o, r := uint64(1)<<(2*i), uint64(1)<<(2*i+1)
			switch {
			case e.release:
				out = (out &^ o) | r
			case e.clear:
				out &^= o
			}
			if e.acquire {
				out |= o
			}
		}
		return out
	}
	states := nodeMayStates(u.body, 0, transfer)
	exit := exitMayState(u.body, 0, transfer)

	for i, ob := range obs {
		o := uint64(1) << (2 * i)
		spec := p.PairedSpecs[ob.spec]
		if exit&o != 0 && !ob.deferRel {
			res.diags = append(res.diags, Diagnostic{
				Pos:  m.Position(ob.pos),
				Rule: "paired",
				Message: fmt.Sprintf("%s acquired by %s here is not released on every path out of %s: a return is reachable with the handle still held — release it (%s), defer the release, or justify in Policy.PairedAllow",
					spec.Resource, ob.acquired, key, prJoin(spec.Releases)),
			})
			ob.leaked = true
		}
	}

	// Double-release detection: a release site whose incoming state has the
	// released bit set and the outstanding bit clear fires on every path
	// after a first release. Deferred releases are not re-flagged against
	// themselves, but an explicit release alongside a defer is.
	inspectSkipLits(u.body, func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		spec, isRel := releases[qualOf(call)]
		if !isRel {
			return true
		}
		site := cfgStmt(call)
		if site == nil {
			return true
		}
		for i, ob := range obs {
			if ob.spec != spec || !prRootedAt(info, call, ob.objs) {
				continue
			}
			in, reached := loStateAt(states, u.body, site)
			if !reached {
				continue
			}
			o, r := uint64(1)<<(2*i), uint64(1)<<(2*i+1)
			if in&r != 0 && in&o == 0 {
				res.diags = append(res.diags, Diagnostic{
					Pos:  m.Position(call.Pos()),
					Rule: "paired",
					Message: fmt.Sprintf("%s from %s is already released on every path reaching this second release — double release corrupts the %s accounting; remove one, or justify in Policy.PairedAllow",
						spec2Name(p, spec), ob.acquired, p.PairedSpecs[spec].Resource),
				})
			}
			if ob.deferRel {
				res.diags = append(res.diags, Diagnostic{
					Pos:  m.Position(call.Pos()),
					Rule: "paired",
					Message: fmt.Sprintf("%s from %s is released both here and by a deferred release in the same function — the defer makes this a double release; remove one, or justify in Policy.PairedAllow",
						spec2Name(p, spec), ob.acquired),
				})
			}
		}
		return true
	})
}

func spec2Name(p *Policy, spec int) string { return p.PairedSpecs[spec].Resource }

// prAcquireTargets returns the binding targets matching the acquire call in
// an assignment or declaration, plus the error-typed target if present.
func prAcquireTargets(info *types.Info, ctx ast.Node, call *ast.CallExpr) ([]ast.Expr, types.Object) {
	var lhs, rhs []ast.Expr
	switch ctx := ctx.(type) {
	case *ast.AssignStmt:
		lhs, rhs = ctx.Lhs, ctx.Rhs
	case *ast.ValueSpec:
		for _, n := range ctx.Names {
			lhs = append(lhs, n)
		}
		rhs = ctx.Values
	default:
		return nil, nil
	}
	var targets []ast.Expr
	if len(rhs) == 1 {
		targets = lhs // multi-value call: all targets bind its results
	} else {
		for i, r := range rhs {
			if ast.Unparen(r) == call && i < len(lhs) {
				targets = []ast.Expr{lhs[i]}
			}
		}
	}
	var errObj types.Object
	var rest []ast.Expr
	for _, t := range targets {
		id, ok := ast.Unparen(t).(*ast.Ident)
		if ok && id.Name != "_" {
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil && obj.Type() != nil && types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
				errObj = obj
				continue
			}
		}
		rest = append(rest, t)
	}
	return rest, errObj
}

// prRootedAt reports whether the release call's receiver base or any
// argument (conversions unwrapped) is one of the obligation's handles.
func prRootedAt(info *types.Info, call *ast.CallExpr, objs map[types.Object]bool) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && objs[info.Uses[id]] {
			return true
		}
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(prUnconvert(info, arg)).(*ast.Ident); ok && objs[info.Uses[id]] {
			return true
		}
	}
	return false
}

// prContainsRelease reports whether n (descending into literals: deferred
// closures run too) contains a release of ob's spec rooted at its handles.
func prContainsRelease(info *types.Info, m *Module, n ast.Node, releases map[string]int, ob *prObligation) bool {
	found := false
	ast.Inspect(n, func(cn ast.Node) bool {
		call, ok := cn.(*ast.CallExpr)
		if !ok {
			return true
		}
		obj := calleeObject(info, call)
		if obj == nil {
			return true
		}
		if spec, isRel := releases[relQualified(m.Path, objectQualifiedName(obj))]; isRel && spec == ob.spec && prRootedAt(info, call, ob.objs) {
			found = true
		}
		return true
	})
	return found
}

// prIsHandle reports whether e *is* one of the obligation's handles —
// possibly behind parentheses, type conversions, or a unary & — as opposed
// to merely mentioning one (a method call on the handle, an arithmetic use).
func prIsHandle(info *types.Info, e ast.Expr, objs map[types.Object]bool) bool {
	e = ast.Unparen(prUnconvert(info, e))
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	return ok && objs[info.Uses[id]]
}

// prMentions reports whether any handle ident occurs inside n.
func prMentions(info *types.Info, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(cn ast.Node) bool {
		if id, ok := cn.(*ast.Ident); ok && objs[info.Uses[id]] {
			found = true
		}
		return true
	})
	return found
}

// prCompositeStores finds composite-literal fields capturing a handle:
// &Win{mem: mem} parks the obligation in (Win).mem.
func prCompositeStores(m *Module, info *types.Info, e ast.Expr, ob *prObligation) []prFieldStore {
	var stores []prFieldStore
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if !prIsHandle(info, kv.Value, ob.objs) {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if fv, ok := info.Uses[key].(*types.Var); ok && fv.IsField() {
				if fk := prFieldVarKey(m, fv, info.TypeOf(lit)); fk != "" {
					stores = append(stores, prFieldStore{spec: ob.spec, field: fk, pos: kv.Pos(), acquired: ob.acquired})
				}
			}
		}
		return true
	})
	return stores
}

// prFieldKeyOf resolves an expression to a struct-field key when it is a
// field selector (or index/slice thereof): s.f, s.f[i].
func prFieldKeyOf(m *Module, info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		return prSelectorFieldKey(m, info, e)
	case *ast.IndexExpr:
		return prFieldKeyOf(m, info, e.X)
	}
	return ""
}

// prSelectorFieldKey resolves a selector to "rel/pkg.(Owner).field" when it
// selects a struct field.
func prSelectorFieldKey(m *Module, info *types.Info, sel *ast.SelectorExpr) string {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return ""
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok {
		return ""
	}
	return prFieldVarKey(m, fv, s.Recv())
}

// prFieldVarKey renders a field variable with its owner type.
func prFieldVarKey(m *Module, fv *types.Var, recv types.Type) string {
	if recv == nil || fv.Pkg() == nil {
		return ""
	}
	for {
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
			continue
		}
		break
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	return relQualified(m.Path, fv.Pkg().Path()+".("+named.Obj().Name()+")."+fv.Name())
}

// prUnconvert strips type conversions: via.MemHandle(req.rmem) roots at
// req.rmem.
func prUnconvert(info *types.Info, e ast.Expr) ast.Expr {
	for {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			e = call.Args[0]
			continue
		}
		return e
	}
}

// prNilCompare matches "x != nil" / "x == nil" and returns the non-nil side.
func prNilCompare(cond ast.Expr) (ast.Expr, token.Token, bool) {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.NEQ && be.Op != token.EQL) {
		return nil, 0, false
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	switch {
	case isNil(be.Y):
		return be.X, be.Op, true
	case isNil(be.X):
		return be.Y, be.Op, true
	}
	return nil, 0, false
}

// prMarkBranch applies fn to the top-level statements of an else branch
// (either a block or a chained if).
func prMarkBranch(s ast.Stmt, fn func(ast.Stmt)) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			fn(st)
		}
	case *ast.IfStmt:
		fn(s)
	}
}

// prParentMap records each node's parent within one unit body, literals
// excluded (they are separate units).
func prParentMap(body *ast.BlockStmt) map[ast.Node]ast.Node {
	parent := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parent[n] = stack[len(stack)-1]
		}
		if _, isLit := n.(*ast.FuncLit); isLit && n != body {
			return false
		}
		stack = append(stack, n)
		return true
	})
	return parent
}

// prCFGNodeSet collects the nodes the CFG records states for.
func prCFGNodeSet(body *ast.BlockStmt) map[ast.Node]bool {
	set := map[ast.Node]bool{}
	for _, blk := range buildCFG(body).blocks {
		for _, n := range blk.nodes {
			set[n] = true
		}
	}
	return set
}

func prJoin(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " / "
		}
		out += n
	}
	return out
}

func sortedIntKeys(mp map[string]int) []string {
	var keys []string
	for k := range mp {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
