// Package bench is the experiment harness: it regenerates every table and
// figure from the paper's evaluation section (§5) on the simulated cluster,
// plus the microbenchmarks they are built from.
//
// Each experiment produces a Table that renders as aligned text or CSV; the
// cmd/figures binary drives them, and bench_test.go exposes each as a Go
// benchmark. Where the paper printed a figure, the table holds the plotted
// series (one row per x-value, one column per curve).
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"viampi/internal/simnet"
	"viampi/internal/sweep"
)

// Options tunes experiment execution.
type Options struct {
	// Quick shrinks iteration counts, problem classes and process counts so
	// the whole suite runs in seconds (used by tests and -quick).
	Quick bool
	Seed  int64
	// Workers bounds the batch-runner pool the grid experiments fan their
	// hermetic simulation cells over; <= 0 means GOMAXPROCS. Every rendered
	// artifact is byte-identical for every value — only wall time changes.
	Workers int
	// Progress, when non-nil, receives the runner's jobs-done/ETA line
	// (drivers pass sweep.Stderr, which is nil unless stderr is a terminal).
	Progress sweep.ProgressFunc
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// RenderMarkdown writes the table as a GitHub-flavored markdown section.
func (t *Table) RenderMarkdown(w io.Writer) {
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n*%s*\n", esc(n))
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV.
func (t *Table) RenderCSV(w io.Writer) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cells[i] = esc(c)
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range t.Rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Experiment regenerates one table or figure from the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(opt Options) (*Table, error)
}

// Experiments returns every experiment keyed and ordered by paper artifact.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "BVIA latency vs. number of active VIs", Fig1},
		{"table1", "Average distinct destinations per process (production apps)", Table1},
		{"table2", "Average VIs and resource utilization per process", Table2},
		{"fig2a", "MVICH latency on cLAN (polling / spinwait / on-demand)", Fig2a},
		{"fig2b", "MVICH latency on Berkeley VIA", Fig2b},
		{"fig3a", "MVICH bandwidth on cLAN", Fig3a},
		{"fig3b", "MVICH bandwidth on Berkeley VIA", Fig3b},
		{"fig4a", "Barrier latency vs. processes on cLAN", Fig4a},
		{"fig4b", "Barrier latency vs. processes on Berkeley VIA", Fig4b},
		{"fig5a", "Allreduce latency on cLAN", Fig5a},
		{"fig5b", "Allreduce latency on Berkeley VIA", Fig5b},
		{"fig6", "NPB normalized time on cLAN (MG, IS, CG, SP, BT)", Fig6},
		{"fig7", "NPB normalized time on Berkeley VIA (IS, CG, EP, SP, BT)", Fig7},
		{"fig8a", "MPI_Init time on cLAN (client-server / peer-to-peer / on-demand)", Fig8a},
		{"fig8b", "MPI_Init time on Berkeley VIA", Fig8b},
		{"table3", "Actual NPB CPU times", Table3},
		// Extensions beyond the paper's evaluation.
		{"ext-scale", "Scaling extension: init time / pinned memory to 128 procs", ExtScale},
		{"ext-dynamic", "Future-work extension: dynamic per-VI flow control", ExtDynamic},
		{"ext-ib", "InfiniBand extension: the issue outlives VIA (paper §6)", ExtIB},
		{"ext-apps", "Table 1 app patterns measured on the stack", ExtApps},
		{"ext-npb", "FT and LU — the kernels the paper omitted", ExtNpb},
		{"ext-evict", "Eviction extension: latency vs. VI cap (Berkeley VIA)", ExtEvict},
		{"ext-init", "Init-cost extension: startup and first-message cost to 4096 procs", ExtInit},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range Experiments() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %s)", id, strings.Join(ids, ", "))
}

// fmtMicros renders a duration as microseconds with 1 decimal.
func fmtMicros(d simnet.Duration) string { return fmt.Sprintf("%.1f", d.Micros()) }

// fmtF renders a float compactly.
func fmtF(v float64) string { return fmt.Sprintf("%.2f", v) }
