package bench

import (
	"fmt"

	"viampi/internal/apps"
	"viampi/internal/mpi"
)

// Fig1 regenerates Figure 1: Berkeley VIA small-message latency as a
// function of the number of active (open, mostly idle) VIs per NIC.
func Fig1(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig1",
		Title:   "Latencies in BVIA as a function of the number of active VIs",
		Columns: []string{"active VIs", "4-byte latency (us)", "8-byte latency (us)"},
		Notes:   []string{"paper: latency rises with open VIs on BVIA (firmware doorbell scan); flat on cLAN"},
	}
	counts := []int{8, 16, 32, 64, 96, 128}
	iters := 50
	if opt.Quick {
		counts = []int{8, 32, 64}
		iters = 10
	}
	msgSizes := []int{4, 8}
	cells, err := gridCells(opt, "fig1", len(counts), len(msgSizes),
		func(r, c int) string { return cellID("fig1", "vis", counts[r], fmt.Sprintf("%dB", msgSizes[c])) },
		func(r, c int) (string, error) {
			extra := counts[r] - 1 // the pingpong channel itself is one VI
			l, err := Pingpong("bvia", StaticPolling, msgSizes[c], iters, extra, opt.Seed)
			if err != nil {
				return "", fmt.Errorf("fig1 vis=%d: %w", counts[r], err)
			}
			return fmtMicros(l), nil
		})
	if err != nil {
		return nil, err
	}
	for i, n := range counts {
		t.AddRow(append([]string{fmt.Sprint(n)}, cells[i]...)...)
	}
	return t, nil
}

// Table1 regenerates Table 1: average distinct destinations per process in
// the production applications.
func Table1(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table1",
		Title:   "Average number of distinct destinations per process",
		Columns: []string{"app", "procs", "avg dests (ours)", "paper"},
	}
	paper := map[string]map[int]string{
		"sPPM":    {64: "5.5", 1024: "< 6"},
		"SMG2000": {64: "41.88", 1024: "< 1023"},
		"Sphot":   {64: "0.98", 1024: "< 1"},
		"Sweep3D": {64: "3.5", 1024: "< 4"},
		"SAMRAI":  {64: "4.94", 1024: "< 10"},
		"CG":      {64: "6.36", 1024: "< 11"},
	}
	sizes := []int{64, 1024}
	for _, p := range apps.All() {
		for _, n := range sizes {
			t.AddRow(p.Name, fmt.Sprint(n), fmtF(apps.AvgDests(p, n)), paper[p.Name][n])
		}
	}
	return t, nil
}

// latencySweep is the Figure 2 series: one-way latency across message sizes.
func latencySweep(id, title, device string, mechs []Mechanism, opt Options) (*Table, error) {
	cols := []string{"bytes"}
	for _, m := range mechs {
		cols = append(cols, m.Name+" (us)")
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	sizes := []int{4, 16, 64, 256, 1024, 4096, 8192, 16384}
	iters := 30
	if opt.Quick {
		sizes = []int{4, 1024, 16384}
		iters = 8
	}
	cells, err := gridCells(opt, id, len(sizes), len(mechs),
		func(r, c int) string { return cellID(id, "bytes", sizes[r], mechs[c].Name) },
		func(r, c int) (string, error) {
			l, err := Pingpong(device, mechs[c], sizes[r], iters, 0, opt.Seed)
			if err != nil {
				return "", fmt.Errorf("%s size=%d mech=%s: %w", id, sizes[r], mechs[c].Name, err)
			}
			return fmtMicros(l), nil
		})
	if err != nil {
		return nil, err
	}
	for i, sz := range sizes {
		t.AddRow(append([]string{fmt.Sprint(sz)}, cells[i]...)...)
	}
	return t, nil
}

// Fig2a regenerates Figure 2(a): latency on cLAN for static-polling,
// static-spinwait and on-demand.
func Fig2a(opt Options) (*Table, error) {
	return latencySweep("fig2a", "Latency of MVICH on cLAN VIA",
		"clan", []Mechanism{StaticPolling, StaticSpinwait, OnDemand}, opt)
}

// Fig2b regenerates Figure 2(b): latency on Berkeley VIA.
func Fig2b(opt Options) (*Table, error) {
	return latencySweep("fig2b", "Latency of MVICH on Berkeley VIA",
		"bvia", []Mechanism{StaticPolling, OnDemand}, opt)
}

// bandwidthSweep is the Figure 3 series.
func bandwidthSweep(id, title, device string, mechs []Mechanism, opt Options) (*Table, error) {
	cols := []string{"bytes"}
	for _, m := range mechs {
		cols = append(cols, m.Name+" (MB/s)")
	}
	t := &Table{ID: id, Title: title, Columns: cols,
		Notes: []string{"the eager->rendezvous switch at 5000 bytes causes the jump the paper notes"}}
	sizes := []int{256, 1024, 4096, 4999, 5001, 8192, 16384, 65536, 262144}
	iters := 40
	if opt.Quick {
		sizes = []int{1024, 4999, 5001, 65536}
		iters = 10
	}
	cells, err := gridCells(opt, id, len(sizes), len(mechs),
		func(r, c int) string { return cellID(id, "bytes", sizes[r], mechs[c].Name) },
		func(r, c int) (string, error) {
			bw, err := Bandwidth(device, mechs[c], sizes[r], iters, opt.Seed)
			if err != nil {
				return "", fmt.Errorf("%s size=%d mech=%s: %w", id, sizes[r], mechs[c].Name, err)
			}
			return fmtF(bw), nil
		})
	if err != nil {
		return nil, err
	}
	for i, sz := range sizes {
		t.AddRow(append([]string{fmt.Sprint(sz)}, cells[i]...)...)
	}
	return t, nil
}

// Fig3a regenerates Figure 3(a): bandwidth on cLAN.
func Fig3a(opt Options) (*Table, error) {
	return bandwidthSweep("fig3a", "Bandwidth of MVICH on cLAN VIA",
		"clan", []Mechanism{StaticPolling, StaticSpinwait, OnDemand}, opt)
}

// Fig3b regenerates Figure 3(b): bandwidth on Berkeley VIA.
func Fig3b(opt Options) (*Table, error) {
	return bandwidthSweep("fig3b", "Bandwidth of MVICH on Berkeley VIA",
		"bvia", []Mechanism{StaticPolling, OnDemand}, opt)
}

// collectiveVsProcs is the Figure 4/5 series: collective latency across
// process counts.
func collectiveVsProcs(id, title, device string, mechs []Mechanism, procsList []int,
	op func(c *mpi.Comm, scratch []byte) error, opt Options) (*Table, error) {
	cols := []string{"procs"}
	for _, m := range mechs {
		cols = append(cols, m.Name+" (us)")
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	iters := 200
	if opt.Quick {
		iters = 20
	}
	cells, err := gridCells(opt, id, len(procsList), len(mechs),
		func(r, c int) string { return cellID(id, "np", procsList[r], mechs[c].Name) },
		func(r, c int) (string, error) {
			l, err := CollectiveLatency(device, mechs[c], procsList[r], iters, op, opt.Seed)
			if err != nil {
				return "", fmt.Errorf("%s procs=%d mech=%s: %w", id, procsList[r], mechs[c].Name, err)
			}
			return fmtMicros(l), nil
		})
	if err != nil {
		return nil, err
	}
	for i, n := range procsList {
		t.AddRow(append([]string{fmt.Sprint(n)}, cells[i]...)...)
	}
	return t, nil
}

func clanProcsList(opt Options) []int {
	if opt.Quick {
		return []int{4, 8, 16}
	}
	return []int{2, 3, 4, 6, 8, 12, 16, 24, 32}
}

func bviaProcsList(opt Options) []int {
	if opt.Quick {
		return []int{4, 8}
	}
	return []int{2, 3, 4, 5, 6, 7, 8}
}

// Fig4a regenerates Figure 4(a): barrier latency on cLAN.
func Fig4a(opt Options) (*Table, error) {
	t, err := collectiveVsProcs("fig4a", "Latency of Barrier in MVICH on cLAN VIA", "clan",
		[]Mechanism{StaticPolling, StaticSpinwait, OnDemand}, clanProcsList(opt), BarrierOp, opt)
	if err == nil {
		t.Notes = append(t.Notes, "paper: on-demand == static-polling; spinwait much worse; non-power-of-2 fluctuation")
	}
	return t, err
}

// Fig4b regenerates Figure 4(b): barrier latency on Berkeley VIA.
func Fig4b(opt Options) (*Table, error) {
	t, err := collectiveVsProcs("fig4b", "Latency of Barrier in MVICH on Berkeley VIA", "bvia",
		[]Mechanism{StaticPolling, OnDemand}, bviaProcsList(opt), BarrierOp, opt)
	if err == nil {
		t.Notes = append(t.Notes, "paper: 8 procs, on-demand 161us vs static 196us (3 vs 7 VIs)")
	}
	return t, err
}

// Fig5a regenerates Figure 5(a): allreduce (MPI_SUM, llcbench-style) on cLAN.
func Fig5a(opt Options) (*Table, error) {
	return collectiveVsProcs("fig5a", "Allreduce Latency in MVICH on cLAN VIA", "clan",
		[]Mechanism{StaticPolling, StaticSpinwait, OnDemand}, clanProcsList(opt), AllreduceOp(64), opt)
}

// Fig5b regenerates Figure 5(b): allreduce on Berkeley VIA.
func Fig5b(opt Options) (*Table, error) {
	return collectiveVsProcs("fig5b", "Allreduce Latency in MVICH on Berkeley VIA", "bvia",
		[]Mechanism{StaticPolling, OnDemand}, bviaProcsList(opt), AllreduceOp(64), opt)
}

// initSweep is the Figure 8 series.
func initSweep(id, title, device string, mechs []Mechanism, procsList []int, opt Options) (*Table, error) {
	cols := []string{"procs"}
	for _, m := range mechs {
		cols = append(cols, m.Name+" (ms)")
	}
	t := &Table{ID: id, Title: title, Columns: cols}
	cells, err := gridCells(opt, id, len(procsList), len(mechs),
		func(r, c int) string { return cellID(id, "np", procsList[r], mechs[c].Name) },
		func(r, c int) (string, error) {
			d, err := InitTime(device, mechs[c], procsList[r], opt.Seed)
			if err != nil {
				return "", fmt.Errorf("%s procs=%d mech=%s: %w", id, procsList[r], mechs[c].Name, err)
			}
			return fmt.Sprintf("%.2f", d.Seconds()*1e3), nil
		})
	if err != nil {
		return nil, err
	}
	for i, n := range procsList {
		t.AddRow(append([]string{fmt.Sprint(n)}, cells[i]...)...)
	}
	return t, nil
}

// Fig8a regenerates Figure 8(a): MPI_Init time on cLAN for the serialized
// client-server static scheme, the peer-to-peer static scheme and on-demand.
func Fig8a(opt Options) (*Table, error) {
	t, err := initSweep("fig8a", "Initialization time in MVICH on cLAN VIA", "clan",
		[]Mechanism{StaticCS, StaticPolling, OnDemand}, clanProcsList(opt), opt)
	if err == nil {
		t.Notes = append(t.Notes, "paper: client-server >> peer-to-peer > on-demand (serialized accepts)")
	}
	return t, err
}

// Fig8b regenerates Figure 8(b): MPI_Init time on Berkeley VIA.
func Fig8b(opt Options) (*Table, error) {
	return initSweep("fig8b", "Initialization time in MVICH on Berkeley VIA", "bvia",
		[]Mechanism{StaticPolling, OnDemand}, bviaProcsList(opt), opt)
}
