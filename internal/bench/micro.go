package bench

import (
	"viampi/internal/mpi"
	"viampi/internal/simnet"
	"viampi/internal/via"
)

// Mechanism is a named (connection policy, completion mode) pair — the
// paper's static-polling / static-spinwait / on-demand curves.
type Mechanism struct {
	Name   string
	Policy string
	Wait   via.WaitMode
	// Tune optionally perturbs the device cost model (ablations).
	Tune func(*via.CostModel)
}

// The mechanisms compared throughout the paper's evaluation.
var (
	StaticPolling  = Mechanism{Name: "static-polling", Policy: "static-p2p", Wait: via.WaitPoll}
	StaticSpinwait = Mechanism{Name: "static-spinwait", Policy: "static-p2p", Wait: via.WaitSpin}
	StaticCS       = Mechanism{Name: "static-cs", Policy: "static-cs", Wait: via.WaitPoll}
	OnDemand       = Mechanism{Name: "on-demand", Policy: "ondemand", Wait: via.WaitPoll}
)

// Instrument, when set, is applied to every measurement Config before it
// runs — the seam drivers use to attach observability (e.g. cmd/figures
// -trace hands each run an obs bus and flight recorder) without threading
// a parameter through every benchmark signature.
var Instrument func(*mpi.Config)

// baseConfig builds an mpi.Config for a measurement run.
func baseConfig(device string, mech Mechanism, procs int, seed int64) mpi.Config {
	cfg := mpi.Config{
		Procs:    procs,
		Device:   device,
		Policy:   mech.Policy,
		WaitMode: mech.Wait,
		Seed:     seed,
		Deadline: 4 * 3600 * simnet.Second,
		TuneCost: mech.Tune,
	}
	if Instrument != nil {
		Instrument(&cfg)
	}
	return cfg
}

// Pingpong measures one-way latency for size-byte messages between two
// ranks, with extraVIs additional idle endpoints opened on each port first
// (Figure 1's independent variable; 0 otherwise).
func Pingpong(device string, mech Mechanism, size, iters, extraVIs int, seed int64) (simnet.Duration, error) {
	var oneWay simnet.Duration
	var innerErr error
	cfg := baseConfig(device, mech, 2, seed)
	_, err := mpi.Run(cfg, func(r *mpi.Rank) {
		c := r.World()
		for i := 0; i < extraVIs; i++ {
			if _, err := r.Port().CreateVi(); err != nil {
				innerErr = err
				return
			}
		}
		buf := make([]byte, size+1)
		out := make([]byte, size)
		me := r.Rank()
		// Warmup establishes the connection and fills caches.
		const warm = 4
		for i := 0; i < warm+iters; i++ {
			if i == warm {
				if err := c.Barrier(); err != nil {
					innerErr = err
					return
				}
			}
			var err error
			if me == 0 {
				if i == warm {
					r.Compute(0) // timer alignment point
				}
				if err = c.Send(1, 0, out); err == nil {
					_, err = c.Recv(buf, 1, 0)
				}
			} else {
				if _, err = c.Recv(buf, 0, 0); err == nil {
					err = c.Send(0, 0, out)
				}
			}
			if err != nil {
				innerErr = err
				return
			}
		}
		if me == 0 {
			// Re-run the timed loop now that everything is warm.
			start := r.Proc().Now()
			for i := 0; i < iters; i++ {
				if err := c.Send(1, 0, out); err != nil {
					innerErr = err
					return
				}
				if _, err := c.Recv(buf, 1, 0); err != nil {
					innerErr = err
					return
				}
			}
			oneWay = r.Proc().Now().Sub(start) / simnet.Duration(2*iters)
		} else {
			for i := 0; i < iters; i++ {
				if _, err := c.Recv(buf, 0, 0); err != nil {
					innerErr = err
					return
				}
				if err := c.Send(0, 0, out); err != nil {
					innerErr = err
					return
				}
			}
		}
	})
	if err == nil {
		err = innerErr
	}
	return oneWay, err
}

// Bandwidth measures streaming bandwidth in MB/s for size-byte messages:
// rank 0 keeps a window of nonblocking sends in flight; rank 1 receives and
// acknowledges the batch.
func Bandwidth(device string, mech Mechanism, size, iters int, seed int64) (float64, error) {
	const window = 16
	var mbps float64
	var innerErr error
	cfg := baseConfig(device, mech, 2, seed)
	_, err := mpi.Run(cfg, func(r *mpi.Rank) {
		c := r.World()
		me := r.Rank()
		out := make([]byte, size)
		ack := make([]byte, 8)
		if me == 0 {
			// Warmup.
			if err := c.Send(1, 1, out); err != nil {
				innerErr = err
				return
			}
			if _, err := c.Recv(ack, 1, 2); err != nil {
				innerErr = err
				return
			}
			start := r.Proc().Now()
			reqs := make([]*mpi.Request, 0, window)
			for i := 0; i < iters; i++ {
				q, err := c.Isend(1, 1, out)
				if err != nil {
					innerErr = err
					return
				}
				reqs = append(reqs, q)
				if len(reqs) == window {
					if err := r.Waitall(reqs...); err != nil {
						innerErr = err
						return
					}
					reqs = reqs[:0]
				}
			}
			if err := r.Waitall(reqs...); err != nil {
				innerErr = err
				return
			}
			if _, err := c.Recv(ack, 1, 2); err != nil {
				innerErr = err
				return
			}
			elapsed := r.Proc().Now().Sub(start).Seconds()
			mbps = float64(size) * float64(iters) / elapsed / 1e6
		} else {
			in := make([]byte, size+1)
			if _, err := c.Recv(in, 0, 1); err != nil {
				innerErr = err
				return
			}
			if err := c.Send(0, 2, ack); err != nil {
				innerErr = err
				return
			}
			for i := 0; i < iters; i++ {
				if _, err := c.Recv(in, 0, 1); err != nil {
					innerErr = err
					return
				}
			}
			if err := c.Send(0, 2, ack); err != nil {
				innerErr = err
				return
			}
		}
	})
	if err == nil {
		err = innerErr
	}
	return mbps, err
}

// CollectiveLatency measures the average latency of repeating a collective
// op iters times on procs ranks, following the paper's method: every rank
// times its own loop, rank 0 gathers and averages.
func CollectiveLatency(device string, mech Mechanism, procs, iters int,
	op func(c *mpi.Comm, scratch []byte) error, seed int64) (simnet.Duration, error) {
	var avg simnet.Duration
	var innerErr error
	cfg := baseConfig(device, mech, procs, seed)
	_, err := mpi.Run(cfg, func(r *mpi.Rank) {
		c := r.World()
		scratch := make([]byte, 64)
		// Warmup: establish whatever connections the collective needs.
		for i := 0; i < 3; i++ {
			if err := op(c, scratch); err != nil {
				innerErr = err
				return
			}
		}
		if err := c.Barrier(); err != nil {
			innerErr = err
			return
		}
		start := r.Proc().Now()
		for i := 0; i < iters; i++ {
			if err := op(c, scratch); err != nil {
				innerErr = err
				return
			}
		}
		mine := r.Proc().Now().Sub(start).Seconds() / float64(iters)
		sums, err := c.AllreduceF64([]float64{mine}, mpi.SumF64)
		if err != nil {
			innerErr = err
			return
		}
		if r.Rank() == 0 {
			avg = simnet.Duration(sums[0] / float64(procs) * 1e9)
		}
	})
	if err == nil {
		err = innerErr
	}
	return avg, err
}

// BarrierOp is a Barrier for CollectiveLatency.
func BarrierOp(c *mpi.Comm, _ []byte) error { return c.Barrier() }

// AllreduceOp returns an MPI_SUM allreduce of size bytes (float64s).
func AllreduceOp(size int) func(c *mpi.Comm, scratch []byte) error {
	return func(c *mpi.Comm, _ []byte) error {
		in := make([]byte, size)
		out := make([]byte, size)
		return c.Allreduce(in, out, mpi.SumF64)
	}
}

// InitTime measures the average MPI_Init duration (Figure 8).
func InitTime(device string, mech Mechanism, procs int, seed int64) (simnet.Duration, error) {
	cfg := baseConfig(device, mech, procs, seed)
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {})
	if err != nil {
		return 0, err
	}
	return w.AvgInit(), nil
}
