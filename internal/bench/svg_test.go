package bench

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func chartTable() *Table {
	t := &Table{
		ID:      "x",
		Title:   "Latency & <sizes>",
		Columns: []string{"procs", "static (us)", "ondemand (us)", "note"},
	}
	t.AddRow("2", "7.5", "7.5", "hello")
	t.AddRow("4", "20.0", "19.0", "world")
	t.AddRow("8", "30.0", "25.5", "!")
	return t
}

// svgCounts parses the SVG and tallies elements.
func svgCounts(t *testing.T, data []byte) map[string]int {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(data))
	counts := map[string]int{}
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		if se, ok := tok.(xml.StartElement); ok {
			counts[se.Name.Local]++
		}
	}
	if counts["svg"] != 1 {
		t.Fatalf("not a single-rooted svg: %v", counts)
	}
	return counts
}

func TestRenderSVGStructure(t *testing.T) {
	tb := chartTable()
	var buf bytes.Buffer
	if err := tb.RenderSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	counts := svgCounts(t, buf.Bytes())

	// Two numeric series (the "note" column is skipped): 2 polylines,
	// 2 series x 3 rows markers each with a tooltip.
	if counts["polyline"] != 2 {
		t.Errorf("polylines = %d, want 2", counts["polyline"])
	}
	if counts["circle"] != 6 {
		t.Errorf("markers = %d, want 6", counts["circle"])
	}
	if counts["title"] != 6 {
		t.Errorf("tooltips = %d, want 6", counts["title"])
	}
	// Legend swatches for >= 2 series.
	if counts["rect"] < 3 { // surface + 2 legend swatches
		t.Errorf("rects = %d, want >= 3", counts["rect"])
	}
	// Escaping: the title's "&" and "<" must be escaped.
	if strings.Contains(out, "Latency & <sizes>") {
		t.Error("unescaped title")
	}
	if !strings.Contains(out, "Latency &amp; &lt;sizes&gt;") {
		t.Error("escaped title missing")
	}
	// Direct end-labels present for both series (relief rule).
	if strings.Count(out, "static (us)") < 2 { // legend + end label
		t.Error("missing direct label for series 1")
	}
	// Fixed slot colors in order, never cycled.
	if !strings.Contains(out, seriesPalette[0]) || !strings.Contains(out, seriesPalette[1]) {
		t.Error("fixed palette slots not used in order")
	}
}

func TestRenderSVGDegenerateTables(t *testing.T) {
	small := &Table{ID: "s", Columns: []string{"a", "b"}}
	small.AddRow("1", "2")
	var buf bytes.Buffer
	if err := small.RenderSVG(&buf); err == nil {
		t.Error("single-row table should refuse to chart")
	}
	text := &Table{ID: "t", Columns: []string{"a", "b"}}
	text.AddRow("1", "x")
	text.AddRow("2", "y")
	if err := text.RenderSVG(&buf); err == nil {
		t.Error("non-numeric table should refuse to chart")
	}
}

// TestRenderSVGEveryExperiment renders each quick experiment's table,
// asserting the figure-shaped ones chart cleanly and none panic.
func TestRenderSVGEveryExperiment(t *testing.T) {
	for _, id := range []string{"fig1", "fig8a"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		tb, err := e.Run(quick)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tb.RenderSVG(&buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		svgCounts(t, buf.Bytes())
	}
}

func TestFmtTick(t *testing.T) {
	cases := map[float64]string{0.5: "0.50", 15: "15.0", 1500: "1500", -12: "-12.0"}
	for v, want := range cases {
		if got := fmtTick(v); got != want {
			t.Errorf("fmtTick(%v) = %q, want %q", v, got, want)
		}
	}
}
