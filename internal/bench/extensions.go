package bench

import (
	"fmt"

	"viampi/internal/apps"
	"viampi/internal/mpi"
	"viampi/internal/npb"
)

// ExtScale pushes the paper's scalability argument past its 8-node testbed:
// MPI_Init time and total pinned eager-buffer memory for a 2-neighbour
// application at up to 128 processes under all three policies. The paper's
// §1 extrapolates a 119 GB waste for CG at 1024 nodes; this experiment
// shows the quadratic-vs-constant trend directly.
func ExtScale(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-scale",
		Title: "Scaling extension: init time and pinned memory vs. processes (ring app)",
		Columns: []string{"procs",
			"init static-cs (ms)", "init static-p2p (ms)", "init on-demand (ms)",
			"pinned static (MB total)", "pinned on-demand (MB total)"},
		Notes: []string{"extension beyond the paper's 32-process testbed; pinned memory is the per-VI eager pools"},
	}
	sizes := []int{16, 32, 64, 96, 128}
	if opt.Quick {
		sizes = []int{8, 16, 32}
	}
	ring := func(r *mpi.Rank) {
		c := r.World()
		me, n := c.Rank(), c.Size()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			r.Proc().Sim().Failf("ring: %v", err)
		}
	}
	for _, n := range sizes {
		row := []string{fmt.Sprint(n)}
		var pinned [2]float64
		for _, mech := range []Mechanism{StaticCS, StaticPolling, OnDemand} {
			cfg := baseConfig("clan", mech, n, opt.Seed)
			w, err := mpi.Run(cfg, ring)
			if err != nil {
				return nil, fmt.Errorf("ext-scale %d/%s: %w", n, mech.Name, err)
			}
			row = append(row, fmt.Sprintf("%.2f", w.AvgInit().Seconds()*1e3))
			switch mech.Name {
			case StaticPolling.Name:
				pinned[0] = float64(w.TotalPinnedPeak()) / (1 << 20)
			case OnDemand.Name:
				pinned[1] = float64(w.TotalPinnedPeak()) / (1 << 20)
			}
		}
		row = append(row, fmtF(pinned[0]), fmtF(pinned[1]))
		t.AddRow(row...)
	}
	return t, nil
}

// ExtApps replays the Table 1 production-application communication patterns
// through the full MPI stack at 64 processes and measures the Table 2
// quantities for them — the bridge between the paper's two tables. The
// paper's §1 argues these applications waste almost all of a static mesh;
// this experiment shows the measured VI counts and pinned memory.
func ExtApps(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-apps",
		Title: "Production-app patterns (Table 1) measured on the stack (Table 2 metrics)",
		Columns: []string{"app", "procs", "VIs static", "VIs on-demand",
			"util static", "pinned static (MB)", "pinned on-demand (MB)"},
	}
	n := 64
	rounds := 3
	if opt.Quick {
		n, rounds = 16, 2
	}
	for _, p := range apps.All() {
		if p.Name == "SMG2000" && opt.Quick {
			continue // its wide partner set is slow in quick CI runs
		}
		stCfg := baseConfig("clan", StaticPolling, n, opt.Seed)
		stW, err := apps.Replay(p, stCfg, rounds, 256)
		if err != nil {
			return nil, fmt.Errorf("ext-apps %s static: %w", p.Name, err)
		}
		odCfg := baseConfig("clan", OnDemand, n, opt.Seed)
		odW, err := apps.Replay(p, odCfg, rounds, 256)
		if err != nil {
			return nil, fmt.Errorf("ext-apps %s ondemand: %w", p.Name, err)
		}
		t.AddRow(p.Name, fmt.Sprint(n),
			fmtF(stW.AvgVIs()), fmtF(odW.AvgVIs()),
			fmtF(stW.AvgUtilization()),
			fmtF(float64(stW.TotalPinnedPeak())/(1<<20)),
			fmtF(float64(odW.TotalPinnedPeak())/(1<<20)))
	}
	return t, nil
}

// ExtNpb runs the two NPB kernels the paper's evaluation skipped — FT
// (all-to-all transpose-bound) and LU (fine-grained wavefront pipeline) —
// under all three mechanisms on cLAN, completing the suite's coverage.
func ExtNpb(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-npb",
		Title: "FT and LU (the kernels the paper omitted), cLAN, normalized",
		Columns: []string{"case", "spinwait (norm)", "on-demand (norm)",
			"polling (s)", "VIs on-demand"},
	}
	cases := []npbCase{
		{"FT", npb.ClassA, 16}, {"FT", npb.ClassB, 16},
		{"LU", npb.ClassA, 16}, {"LU", npb.ClassB, 16},
	}
	if opt.Quick {
		cases = []npbCase{{"FT", npb.ClassS, 8}, {"LU", npb.ClassS, 8}}
	}
	for _, cs := range cases {
		sw, err := runNPB("clan", cs.bench, cs.class, cs.procs, StaticSpinwait, opt)
		if err != nil {
			return nil, err
		}
		sp, err := runNPB("clan", cs.bench, cs.class, cs.procs, StaticPolling, opt)
		if err != nil {
			return nil, err
		}
		od, err := runNPB("clan", cs.bench, cs.class, cs.procs, OnDemand, opt)
		if err != nil {
			return nil, err
		}
		// VI footprint from a dedicated on-demand run.
		k, err := npb.ByName(cs.bench)
		if err != nil {
			return nil, err
		}
		_, w, err := npb.Run(k, cs.class, baseConfig("clan", OnDemand, cs.procs, opt.Seed))
		if err != nil {
			return nil, err
		}
		t.AddRow(cs.label(), fmtF(sw/sp), fmtF(od/sp), fmtF(sp), fmtF(w.AvgVIs()))
	}
	return t, nil
}

// ExtIB carries the paper's conclusion forward: "since InfiniBand has many
// characteristics in common with VIA ... this issue will continue to exist
// along with next-generation InfiniBand hardware". Same experiments, IB
// personality (queue pairs as VIs, hardware doorbells, fast links): the
// latency advantage of the fabric does nothing for connection-setup cost or
// pinned-buffer scaling, so the mechanism ordering is unchanged.
func ExtIB(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-ib",
		Title: "InfiniBand extension: the scalability issue outlives VIA",
		Columns: []string{"procs", "4B latency (us)",
			"init static-p2p (ms)", "init on-demand (ms)",
			"barrier static (us)", "barrier on-demand (us)",
			"pinned static (MB)", "pinned on-demand (MB)"},
	}
	sizes := []int{16, 32, 64}
	iters := 100
	if opt.Quick {
		sizes = []int{8, 16}
		iters = 20
	}
	lat, err := Pingpong("ib", StaticPolling, 4, 30, 0, opt.Seed)
	if err != nil {
		return nil, err
	}
	ring := func(r *mpi.Rank) {
		c := r.World()
		me, n := c.Rank(), c.Size()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			r.Proc().Sim().Failf("ring: %v", err)
		}
	}
	for _, n := range sizes {
		stInit, err := InitTime("ib", StaticPolling, n, opt.Seed)
		if err != nil {
			return nil, err
		}
		odInit, err := InitTime("ib", OnDemand, n, opt.Seed)
		if err != nil {
			return nil, err
		}
		stBar, err := CollectiveLatency("ib", StaticPolling, n, iters, BarrierOp, opt.Seed)
		if err != nil {
			return nil, err
		}
		odBar, err := CollectiveLatency("ib", OnDemand, n, iters, BarrierOp, opt.Seed)
		if err != nil {
			return nil, err
		}
		stW, err := mpi.Run(baseConfig("ib", StaticPolling, n, opt.Seed), ring)
		if err != nil {
			return nil, err
		}
		odW, err := mpi.Run(baseConfig("ib", OnDemand, n, opt.Seed), ring)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprint(n), fmtMicros(lat),
			fmt.Sprintf("%.2f", stInit.Seconds()*1e3),
			fmt.Sprintf("%.2f", odInit.Seconds()*1e3),
			fmtMicros(stBar), fmtMicros(odBar),
			fmtF(float64(stW.TotalPinnedPeak())/(1<<20)),
			fmtF(float64(odW.TotalPinnedPeak())/(1<<20)))
	}
	return t, nil
}

// ExtDynamic evaluates the paper's stated future work (§6): on-demand
// connections combined with dynamic per-VI flow control. It reports pinned
// memory and run time for a mixed workload — a hot neighbour exchange plus
// occasional wide collectives — under static, on-demand, and
// on-demand+dynamic-credits.
func ExtDynamic(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-dynamic",
		Title: "Future-work extension: on-demand + dynamic flow control",
		Columns: []string{"configuration", "avg VIs", "pinned/rank (kB)",
			"run time (ms)"},
		Notes: []string{"hot ring traffic + occasional allreduce at 16 ranks; dynamic pools grow only on the hot channels"},
	}
	n := 16
	iters := 200
	if opt.Quick {
		n, iters = 8, 50
	}
	workload := func(r *mpi.Rank) {
		c := r.World()
		me := c.Rank()
		out := make([]byte, 512)
		in := make([]byte, 512)
		for i := 0; i < iters; i++ {
			if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
				r.Proc().Sim().Failf("ring: %v", err)
				return
			}
			if i%20 == 0 {
				if _, err := c.AllreduceF64([]float64{1}, mpi.SumF64); err != nil {
					r.Proc().Sim().Failf("allreduce: %v", err)
					return
				}
			}
		}
	}
	type cfgCase struct {
		name string
		cfg  mpi.Config
	}
	cases := []cfgCase{
		{"static-p2p", baseConfig("clan", StaticPolling, n, opt.Seed)},
		{"on-demand", baseConfig("clan", OnDemand, n, opt.Seed)},
	}
	dyn := baseConfig("clan", OnDemand, n, opt.Seed)
	dyn.DynamicCredits = true
	cases = append(cases, cfgCase{"on-demand+dynamic", dyn})
	for _, cs := range cases {
		w, err := mpi.Run(cs.cfg, workload)
		if err != nil {
			return nil, fmt.Errorf("ext-dynamic %s: %w", cs.name, err)
		}
		perRank := float64(w.TotalPinnedPeak()) / float64(n) / 1024
		t.AddRow(cs.name, fmtF(w.AvgVIs()), fmtF(perRank),
			fmt.Sprintf("%.3f", w.Elapsed.Seconds()*1e3))
	}
	return t, nil
}
