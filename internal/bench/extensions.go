package bench

import (
	"fmt"

	"viampi/internal/apps"
	"viampi/internal/mpi"
	"viampi/internal/npb"
	"viampi/internal/sweep"
)

// ExtScale pushes the paper's scalability argument past its 8-node testbed:
// MPI_Init time and total pinned eager-buffer memory for a 2-neighbour
// application at up to 128 processes under all three policies. The paper's
// §1 extrapolates a 119 GB waste for CG at 1024 nodes; this experiment
// shows the quadratic-vs-constant trend directly.
func ExtScale(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-scale",
		Title: "Scaling extension: init time and pinned memory vs. processes (ring app)",
		Columns: []string{"procs",
			"init static-cs (ms)", "init static-p2p (ms)", "init on-demand (ms)",
			"pinned static (MB total)", "pinned on-demand (MB total)"},
		Notes: []string{"extension beyond the paper's 32-process testbed; pinned memory is the per-VI eager pools"},
	}
	sizes := []int{16, 32, 64, 96, 128}
	if opt.Quick {
		sizes = []int{8, 16, 32}
	}
	ring := func(r *mpi.Rank) {
		c := r.World()
		me, n := c.Rank(), c.Size()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			r.Proc().Sim().Failf("ring: %v", err)
		}
	}
	type scaleCell struct {
		initMs   string
		pinnedMB float64
	}
	mechs := []Mechanism{StaticCS, StaticPolling, OnDemand}
	var jobs []sweep.Job[scaleCell]
	for _, n := range sizes {
		for _, mech := range mechs {
			n, mech := n, mech
			jobs = append(jobs, sweep.Job[scaleCell]{
				ID: cellID("ext-scale", "np", n, mech.Name),
				Run: func() (scaleCell, error) {
					cfg := baseConfig("clan", mech, n, opt.Seed)
					w, err := mpi.Run(cfg, ring)
					if err != nil {
						return scaleCell{}, fmt.Errorf("ext-scale %d/%s: %w", n, mech.Name, err)
					}
					return scaleCell{
						initMs:   fmt.Sprintf("%.2f", w.AvgInit().Seconds()*1e3),
						pinnedMB: float64(w.TotalPinnedPeak()) / (1 << 20),
					}, nil
				},
			})
		}
	}
	cells, err := runGrid(opt, "ext-scale", jobs)
	if err != nil {
		return nil, err
	}
	for i, n := range sizes {
		cs, p2p, od := cells[i*len(mechs)], cells[i*len(mechs)+1], cells[i*len(mechs)+2]
		t.AddRow(fmt.Sprint(n), cs.initMs, p2p.initMs, od.initMs,
			fmtF(p2p.pinnedMB), fmtF(od.pinnedMB))
	}
	return t, nil
}

// ExtApps replays the Table 1 production-application communication patterns
// through the full MPI stack at 64 processes and measures the Table 2
// quantities for them — the bridge between the paper's two tables. The
// paper's §1 argues these applications waste almost all of a static mesh;
// this experiment shows the measured VI counts and pinned memory.
func ExtApps(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-apps",
		Title: "Production-app patterns (Table 1) measured on the stack (Table 2 metrics)",
		Columns: []string{"app", "procs", "VIs static", "VIs on-demand",
			"util static", "pinned static (MB)", "pinned on-demand (MB)"},
	}
	n := 64
	rounds := 3
	if opt.Quick {
		n, rounds = 16, 2
	}
	type appCell struct {
		avgVIs, util, pinnedMB float64
	}
	mechs := []Mechanism{StaticPolling, OnDemand}
	var jobs []sweep.Job[appCell]
	for _, p := range apps.All() {
		if p.Name == "SMG2000" && opt.Quick {
			continue // its wide partner set is slow in quick CI runs
		}
		for _, mech := range mechs {
			p, mech := p, mech
			jobs = append(jobs, sweep.Job[appCell]{
				ID: fmt.Sprintf("ext-apps/%s/%s", p.Name, mech.Name),
				Run: func() (appCell, error) {
					cfg := baseConfig("clan", mech, n, opt.Seed)
					w, err := apps.Replay(p, cfg, rounds, 256)
					if err != nil {
						return appCell{}, fmt.Errorf("ext-apps %s %s: %w", p.Name, mech.Name, err)
					}
					return appCell{
						avgVIs:   w.AvgVIs(),
						util:     w.AvgUtilization(),
						pinnedMB: float64(w.TotalPinnedPeak()) / (1 << 20),
					}, nil
				},
			})
		}
	}
	cells, err := runGrid(opt, "ext-apps", jobs)
	if err != nil {
		return nil, err
	}
	i := 0
	for _, p := range apps.All() {
		if p.Name == "SMG2000" && opt.Quick {
			continue
		}
		st, od := cells[i], cells[i+1]
		i += 2
		t.AddRow(p.Name, fmt.Sprint(n),
			fmtF(st.avgVIs), fmtF(od.avgVIs),
			fmtF(st.util),
			fmtF(st.pinnedMB), fmtF(od.pinnedMB))
	}
	return t, nil
}

// ExtNpb runs the two NPB kernels the paper's evaluation skipped — FT
// (all-to-all transpose-bound) and LU (fine-grained wavefront pipeline) —
// under all three mechanisms on cLAN, completing the suite's coverage.
func ExtNpb(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-npb",
		Title: "FT and LU (the kernels the paper omitted), cLAN, normalized",
		Columns: []string{"case", "spinwait (norm)", "on-demand (norm)",
			"polling (s)", "VIs on-demand"},
	}
	cases := []npbCase{
		{"FT", npb.ClassA, 16}, {"FT", npb.ClassB, 16},
		{"LU", npb.ClassA, 16}, {"LU", npb.ClassB, 16},
	}
	if opt.Quick {
		cases = []npbCase{{"FT", npb.ClassS, 8}, {"LU", npb.ClassS, 8}}
	}
	if err := npbEnsure(opt, "ext-npb",
		npbSpec{"clan", cases, []Mechanism{StaticSpinwait, StaticPolling, OnDemand}}); err != nil {
		return nil, err
	}
	// VI footprints from dedicated on-demand runs.
	footJobs := make([]sweep.Job[float64], len(cases))
	for i, cs := range cases {
		cs := cs
		footJobs[i] = sweep.Job[float64]{
			ID: fmt.Sprintf("ext-npb/footprint/%s", cs.label()),
			Run: func() (float64, error) {
				k, err := npb.ByName(cs.bench)
				if err != nil {
					return 0, err
				}
				_, w, err := npb.Run(k, cs.class, baseConfig("clan", OnDemand, cs.procs, opt.Seed))
				if err != nil {
					return 0, err
				}
				return w.AvgVIs(), nil
			},
		}
	}
	footprints, err := runGrid(opt, "ext-npb/footprint", footJobs)
	if err != nil {
		return nil, err
	}
	for i, cs := range cases {
		sw, err := runNPB("clan", cs.bench, cs.class, cs.procs, StaticSpinwait, opt)
		if err != nil {
			return nil, err
		}
		sp, err := runNPB("clan", cs.bench, cs.class, cs.procs, StaticPolling, opt)
		if err != nil {
			return nil, err
		}
		od, err := runNPB("clan", cs.bench, cs.class, cs.procs, OnDemand, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(cs.label(), fmtF(sw/sp), fmtF(od/sp), fmtF(sp), fmtF(footprints[i]))
	}
	return t, nil
}

// ExtIB carries the paper's conclusion forward: "since InfiniBand has many
// characteristics in common with VIA ... this issue will continue to exist
// along with next-generation InfiniBand hardware". Same experiments, IB
// personality (queue pairs as VIs, hardware doorbells, fast links): the
// latency advantage of the fabric does nothing for connection-setup cost or
// pinned-buffer scaling, so the mechanism ordering is unchanged.
func ExtIB(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-ib",
		Title: "InfiniBand extension: the scalability issue outlives VIA",
		Columns: []string{"procs", "4B latency (us)",
			"init static-p2p (ms)", "init on-demand (ms)",
			"barrier static (us)", "barrier on-demand (us)",
			"pinned static (MB)", "pinned on-demand (MB)"},
	}
	sizes := []int{16, 32, 64}
	iters := 100
	if opt.Quick {
		sizes = []int{8, 16}
		iters = 20
	}
	lat, err := Pingpong("ib", StaticPolling, 4, 30, 0, opt.Seed)
	if err != nil {
		return nil, err
	}
	ring := func(r *mpi.Rank) {
		c := r.World()
		me, n := c.Rank(), c.Size()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			r.Proc().Sim().Failf("ring: %v", err)
		}
	}
	jobs := make([]sweep.Job[[]string], len(sizes))
	for i, n := range sizes {
		n := n
		jobs[i] = sweep.Job[[]string]{
			ID: cellID("ext-ib", "np", n, "all"),
			Run: func() ([]string, error) {
				stInit, err := InitTime("ib", StaticPolling, n, opt.Seed)
				if err != nil {
					return nil, err
				}
				odInit, err := InitTime("ib", OnDemand, n, opt.Seed)
				if err != nil {
					return nil, err
				}
				stBar, err := CollectiveLatency("ib", StaticPolling, n, iters, BarrierOp, opt.Seed)
				if err != nil {
					return nil, err
				}
				odBar, err := CollectiveLatency("ib", OnDemand, n, iters, BarrierOp, opt.Seed)
				if err != nil {
					return nil, err
				}
				stW, err := mpi.Run(baseConfig("ib", StaticPolling, n, opt.Seed), ring)
				if err != nil {
					return nil, err
				}
				odW, err := mpi.Run(baseConfig("ib", OnDemand, n, opt.Seed), ring)
				if err != nil {
					return nil, err
				}
				return []string{fmt.Sprint(n), fmtMicros(lat),
					fmt.Sprintf("%.2f", stInit.Seconds()*1e3),
					fmt.Sprintf("%.2f", odInit.Seconds()*1e3),
					fmtMicros(stBar), fmtMicros(odBar),
					fmtF(float64(stW.TotalPinnedPeak()) / (1 << 20)),
					fmtF(float64(odW.TotalPinnedPeak()) / (1 << 20))}, nil
			},
		}
	}
	rows, err := runGrid(opt, "ext-ib", jobs)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

// ExtDynamic evaluates the paper's stated future work (§6): on-demand
// connections combined with dynamic per-VI flow control. It reports pinned
// memory and run time for a mixed workload — a hot neighbour exchange plus
// occasional wide collectives — under static, on-demand, and
// on-demand+dynamic-credits.
func ExtDynamic(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-dynamic",
		Title: "Future-work extension: on-demand + dynamic flow control",
		Columns: []string{"configuration", "avg VIs", "pinned/rank (kB)",
			"run time (ms)"},
		Notes: []string{"hot ring traffic + occasional allreduce at 16 ranks; dynamic pools grow only on the hot channels"},
	}
	n := 16
	iters := 200
	if opt.Quick {
		n, iters = 8, 50
	}
	workload := func(r *mpi.Rank) {
		c := r.World()
		me := c.Rank()
		out := make([]byte, 512)
		in := make([]byte, 512)
		for i := 0; i < iters; i++ {
			if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
				r.Proc().Sim().Failf("ring: %v", err)
				return
			}
			if i%20 == 0 {
				if _, err := c.AllreduceF64([]float64{1}, mpi.SumF64); err != nil {
					r.Proc().Sim().Failf("allreduce: %v", err)
					return
				}
			}
		}
	}
	type cfgCase struct {
		name string
		cfg  mpi.Config
	}
	cases := []cfgCase{
		{"static-p2p", baseConfig("clan", StaticPolling, n, opt.Seed)},
		{"on-demand", baseConfig("clan", OnDemand, n, opt.Seed)},
	}
	dyn := baseConfig("clan", OnDemand, n, opt.Seed)
	dyn.DynamicCredits = true
	cases = append(cases, cfgCase{"on-demand+dynamic", dyn})
	jobs := make([]sweep.Job[[]string], len(cases))
	for i, cs := range cases {
		cs := cs
		jobs[i] = sweep.Job[[]string]{
			ID: "ext-dynamic/" + cs.name,
			Run: func() ([]string, error) {
				w, err := mpi.Run(cs.cfg, workload)
				if err != nil {
					return nil, fmt.Errorf("ext-dynamic %s: %w", cs.name, err)
				}
				perRank := float64(w.TotalPinnedPeak()) / float64(n) / 1024
				return []string{cs.name, fmtF(w.AvgVIs()), fmtF(perRank),
					fmt.Sprintf("%.3f", w.Elapsed.Seconds()*1e3)}, nil
			},
		}
	}
	rows, err := runGrid(opt, "ext-dynamic", jobs)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}
