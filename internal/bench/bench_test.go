package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

var quick = Options{Quick: true, Seed: 1}

// cell parses a table cell as float.
func cell(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(tb.Rows[row][col]), 64)
	if err != nil {
		t.Fatalf("cell(%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestExperimentRegistry(t *testing.T) {
	if len(Experiments()) != 23 {
		t.Fatalf("have %d experiments, want 23 (every paper table+figure plus 7 extensions)", len(Experiments()))
	}
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := ByID("fig4a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("expected unknown-id error")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{ID: "x", Title: "T", Columns: []string{"a", "b"}, Notes: []string{"n"}}
	tb.AddRow("1", "hello,\"world\"")
	var buf bytes.Buffer
	tb.Render(&buf)
	if !strings.Contains(buf.String(), "hello") || !strings.Contains(buf.String(), "note: n") {
		t.Fatalf("render output missing content:\n%s", buf.String())
	}
	buf.Reset()
	tb.RenderCSV(&buf)
	if !strings.Contains(buf.String(), `"hello,""world"""`) {
		t.Fatalf("csv escaping broken:\n%s", buf.String())
	}
	buf.Reset()
	md := &Table{ID: "m", Title: "M", Columns: []string{"a|x", "b"}, Notes: []string{"note"}}
	md.AddRow("1|2", "v")
	md.RenderMarkdown(&buf)
	out := buf.String()
	if !strings.Contains(out, `a\|x`) || !strings.Contains(out, `1\|2`) {
		t.Fatalf("markdown pipe escaping broken:\n%s", out)
	}
	if !strings.Contains(out, "| --- | --- |") || !strings.Contains(out, "*note*") {
		t.Fatalf("markdown structure broken:\n%s", out)
	}
}

func TestFig1Shape(t *testing.T) {
	tb, err := Fig1(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Latency must increase monotonically with the VI count on BVIA.
	prev := 0.0
	for i := range tb.Rows {
		l := cell(t, tb, i, 1)
		if l <= prev {
			t.Fatalf("fig1 not monotonically increasing at row %d: %v <= %v", i, l, prev)
		}
		prev = l
	}
}

func TestTable1Complete(t *testing.T) {
	tb, err := Table1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 12 { // 6 apps x 2 sizes
		t.Fatalf("table1 rows = %d, want 12", len(tb.Rows))
	}
}

func TestFig2LatencyShapes(t *testing.T) {
	tb, err := Fig2a(quick)
	if err != nil {
		t.Fatal(err)
	}
	// All three mechanisms agree at small sizes (paper: same performance).
	p0 := cell(t, tb, 0, 1)
	s0 := cell(t, tb, 0, 2)
	o0 := cell(t, tb, 0, 3)
	if rel(p0, o0) > 0.05 {
		t.Errorf("fig2a: ondemand small-msg latency %v deviates from polling %v", o0, p0)
	}
	if rel(p0, s0) > 0.10 {
		t.Errorf("fig2a: spinwait small-msg latency %v deviates from polling %v", s0, p0)
	}
	// Latency grows with size.
	if cell(t, tb, len(tb.Rows)-1, 1) <= p0 {
		t.Error("fig2a latency did not grow with size")
	}
	// cLAN latency in a plausible band (paper-era: ~10-20us small messages).
	if p0 < 5 || p0 > 40 {
		t.Errorf("fig2a small-message latency %vus outside plausible band", p0)
	}
	tb2, err := Fig2b(quick)
	if err != nil {
		t.Fatal(err)
	}
	b0 := cell(t, tb2, 0, 1)
	if b0 <= p0 {
		t.Errorf("BVIA latency %v not above cLAN %v", b0, p0)
	}
}

func rel(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	if a == 0 {
		return 0
	}
	return d / a
}

func TestFig3BandwidthShapes(t *testing.T) {
	tb, err := Fig3a(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Find the 4999 and 5001 rows: the eager->rendezvous switch must dent
	// the curve (paper notes the jump at the 5000-byte threshold).
	var bw4999, bw5001, bwBig float64
	for i := range tb.Rows {
		switch tb.Rows[i][0] {
		case "4999":
			bw4999 = cell(t, tb, i, 1)
		case "5001":
			bw5001 = cell(t, tb, i, 1)
		case "65536":
			bwBig = cell(t, tb, i, 1)
		}
	}
	if bw5001 >= bw4999 {
		t.Errorf("fig3a: no dip across the eager/rendezvous threshold (%v -> %v)", bw4999, bw5001)
	}
	if bwBig <= bw5001 {
		t.Errorf("fig3a: bandwidth does not recover at large sizes (%v vs %v)", bwBig, bw5001)
	}
	// Asymptotic bandwidth approaches the 113 MB/s link.
	if bwBig < 60 || bwBig > 113 {
		t.Errorf("fig3a: large-message bandwidth %v MB/s outside band", bwBig)
	}
}

func TestFig4BarrierShapes(t *testing.T) {
	tb, err := Fig4a(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	poll := cell(t, tb, last, 1)
	spin := cell(t, tb, last, 2)
	od := cell(t, tb, last, 3)
	if spin <= poll {
		t.Errorf("fig4a: spinwait barrier %v not worse than polling %v", spin, poll)
	}
	if rel(poll, od) > 0.10 {
		t.Errorf("fig4a: ondemand %v deviates >10%% from polling %v", od, poll)
	}
	tb2, err := Fig4b(quick)
	if err != nil {
		t.Fatal(err)
	}
	last = len(tb2.Rows) - 1
	st := cell(t, tb2, last, 1)
	odb := cell(t, tb2, last, 2)
	if odb >= st {
		t.Errorf("fig4b: BVIA ondemand barrier %v not faster than static %v (paper: 161 vs 196)", odb, st)
	}
}

func TestFig5AllreduceShapes(t *testing.T) {
	tb, err := Fig5b(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	st := cell(t, tb, last, 1)
	od := cell(t, tb, last, 2)
	if od >= st {
		t.Errorf("fig5b: BVIA ondemand allreduce %v not faster than static %v", od, st)
	}
}

func TestFig8InitShapes(t *testing.T) {
	tb, err := Fig8a(quick)
	if err != nil {
		t.Fatal(err)
	}
	last := len(tb.Rows) - 1
	cs := cell(t, tb, last, 1)
	p2p := cell(t, tb, last, 2)
	od := cell(t, tb, last, 3)
	if !(od < p2p && p2p < cs) {
		t.Errorf("fig8a ordering broken: od=%v p2p=%v cs=%v", od, p2p, cs)
	}
	// Init time grows with procs for static, stays near-flat for on-demand.
	odFirst := cell(t, tb, 0, 3)
	csFirst := cell(t, tb, 0, 1)
	if cs/csFirst < 2 {
		t.Errorf("fig8a: client-server init did not grow with procs (%v -> %v)", csFirst, cs)
	}
	if od/odFirst > 3 {
		t.Errorf("fig8a: on-demand init grew too much (%v -> %v)", odFirst, od)
	}
}

func TestTable2Shapes(t *testing.T) {
	tb, err := Table2(quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]int{}
	for i, row := range tb.Rows {
		byName[row[0]] = append(byName[row[0]], i)
	}
	for name, rows := range byName {
		for _, i := range rows {
			procs := cell(t, tb, i, 1)
			static := cell(t, tb, i, 2)
			od := cell(t, tb, i, 3)
			utilS := cell(t, tb, i, 4)
			utilO := cell(t, tb, i, 5)
			if static != procs-1 {
				t.Errorf("table2 %s: static VIs %v != N-1 (%v)", name, static, procs-1)
			}
			if od > static {
				t.Errorf("table2 %s: ondemand VIs %v > static %v", name, od, static)
			}
			if utilO != 1.0 {
				t.Errorf("table2 %s: ondemand utilization %v != 1.0", name, utilO)
			}
			if utilS > 1.0 {
				t.Errorf("table2 %s: static utilization %v > 1", name, utilS)
			}
			// Pinned memory tracks VI count.
			pinS := cell(t, tb, i, 6)
			pinO := cell(t, tb, i, 7)
			if od < static && pinO >= pinS {
				t.Errorf("table2 %s: pinned memory did not shrink (%v vs %v)", name, pinO, pinS)
			}
		}
	}
	// Alltoall (and IS) are fully connected even on-demand.
	for _, i := range byName["Alltoall"] {
		if cell(t, tb, i, 3) != cell(t, tb, i, 1)-1 {
			t.Errorf("table2 Alltoall: ondemand VIs %v != N-1", tb.Rows[i][3])
		}
		if cell(t, tb, i, 4) != 1.0 {
			t.Errorf("table2 Alltoall: static utilization should be 1.0")
		}
	}
	// Ring uses exactly 2.
	for _, i := range byName["Ring"] {
		if cell(t, tb, i, 3) != 2 {
			t.Errorf("table2 Ring: ondemand VIs %v != 2", tb.Rows[i][3])
		}
	}
}

func TestFig6Fig7Table3Shapes(t *testing.T) {
	f6, err := Fig6(quick)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range f6.Rows {
		spin := cell(t, f6, i, 1)
		od := cell(t, f6, i, 2)
		if od > 1.15 {
			t.Errorf("fig6 %s: on-demand normalized %v, want ~1 (paper: <2%% loss)", row[0], od)
		}
		if spin < 0.99 {
			t.Errorf("fig6 %s: spinwait %v better than polling?", row[0], spin)
		}
	}
	f7, err := Fig7(quick)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range f7.Rows {
		od := cell(t, f7, i, 1)
		// Quick mode runs class S, which is too short to amortize the
		// in-region connection setup the paper discusses; allow 5%.
		if od > 1.05 {
			t.Errorf("fig7 %s: on-demand normalized %v, want <= ~1 on BVIA", row[0], od)
		}
	}
	t3, err := Table3(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != len(clanCases(quick))+len(bviaCases(quick)) {
		t.Fatalf("table3 rows = %d", len(t3.Rows))
	}
	// The memo cache must have made table3 reuse fig6/fig7 runs.
	if len(npbCache) == 0 {
		t.Fatal("npb cache empty")
	}
}

func TestExtensionExperiments(t *testing.T) {
	sc, err := ExtScale(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Static-cs init grows superlinearly; on-demand stays near-flat; static
	// pinned memory grows quadratically in total while on-demand is linear.
	first, last := 0, len(sc.Rows)-1
	growCS := cell(t, sc, last, 1) / cell(t, sc, first, 1)
	growOD := cell(t, sc, last, 3) / cell(t, sc, first, 3)
	if growCS < 2*growOD {
		t.Errorf("ext-scale: static-cs init growth %.1fx not >> on-demand %.1fx", growCS, growOD)
	}
	pinS := cell(t, sc, last, 4)
	pinO := cell(t, sc, last, 5)
	if pinS < 5*pinO {
		t.Errorf("ext-scale: static pinned %.1f MB not >> on-demand %.1f MB", pinS, pinO)
	}

	dy, err := ExtDynamic(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(dy.Rows) != 3 {
		t.Fatalf("ext-dynamic rows = %d", len(dy.Rows))
	}
	pinStatic := cell(t, dy, 0, 2)
	pinOD := cell(t, dy, 1, 2)
	pinDyn := cell(t, dy, 2, 2)
	if !(pinDyn < pinOD && pinOD < pinStatic) {
		t.Errorf("ext-dynamic pinned ordering broken: %v < %v < %v expected",
			pinDyn, pinOD, pinStatic)
	}
	// Dynamic flow control must not blow up run time.
	tStatic := cell(t, dy, 0, 3)
	tDyn := cell(t, dy, 2, 3)
	if tDyn > tStatic*1.25 {
		t.Errorf("ext-dynamic run time %.3f ms too far above static %.3f ms", tDyn, tStatic)
	}

	ev, err := ExtEvict(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Rows) != 4 {
		t.Fatalf("ext-evict rows = %d", len(ev.Rows))
	}
	// Row 0 is uncapped: the shift pattern touches every peer, so no
	// evictions and a full mesh's worth of pinned memory. The tightest cap
	// (last row) must actually evict and must pin less.
	if ev.Rows[0][4] != "0" {
		t.Errorf("ext-evict uncapped run evicted (%s)", ev.Rows[0][4])
	}
	lastEv := len(ev.Rows) - 1
	if cell(t, ev, lastEv, 4) == 0 {
		t.Error("ext-evict: tightest cap recorded no evictions")
	}
	if cell(t, ev, lastEv, 2) >= cell(t, ev, 0, 2) {
		t.Errorf("ext-evict: cap did not shrink pinned memory (%s vs %s)",
			ev.Rows[lastEv][2], ev.Rows[0][2])
	}
	// The cap trades memory for latency: capped runs cannot be faster.
	if cell(t, ev, lastEv, 3) < cell(t, ev, 0, 3) {
		t.Errorf("ext-evict: capped latency %s below uncapped %s",
			ev.Rows[lastEv][3], ev.Rows[0][3])
	}

	ib, err := ExtIB(quick)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ib.Rows {
		lat := cell(t, ib, i, 1)
		if lat >= 7.2 { // must be faster than cLAN's small-message latency
			t.Errorf("ext-ib latency %v not below cLAN", lat)
		}
		stInit := cell(t, ib, i, 2)
		odInit := cell(t, ib, i, 3)
		if odInit >= stInit {
			t.Errorf("ext-ib init ordering broken: %v vs %v", odInit, stInit)
		}
		pinS := cell(t, ib, i, 6)
		pinO := cell(t, ib, i, 7)
		if pinO >= pinS {
			t.Errorf("ext-ib pinned ordering broken: %v vs %v", pinO, pinS)
		}
	}
}
