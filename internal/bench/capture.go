package bench

// Capture-overhead workload for the wall-clock measurement rail: the same
// CG replay run twice, once with only a counting subscriber on the bus and
// once with a capture.Writer encoding every event into the void. The event
// count, virtual time, and bundle size are pure functions of the workload
// shape; cmd/benchsnap times the two variants against the host clock and
// reports the recording tax. Like simcore.go, this file stays
// wall-clock-free — timing is the caller's job.

import (
	"fmt"
	"io"

	"viampi/internal/apps"
	"viampi/internal/mpi"
	"viampi/internal/obs"
	"viampi/internal/obs/capture"
	"viampi/internal/simnet"
)

// CaptureResult is one capture-overhead workload outcome. Every field is
// deterministic for a given (record, seed).
type CaptureResult struct {
	Name        string
	Events      int64
	BundleBytes int64 // encoded bundle size; 0 when recording is off
	VirtualNS   int64
}

// CaptureWorkload runs the CG communication pattern at 8 ranks under
// on-demand with the obs bus on, either counting events (record=false) or
// encoding them through a capture.Writer into io.Discard (record=true).
func CaptureWorkload(record bool, seed int64) (CaptureResult, error) {
	const procs, rounds, msgBytes = 8, 100, 1024
	cfg := mpi.Config{Procs: procs, Policy: "ondemand", Seed: seed}
	cfg.Obs = obs.NewBus()
	cfg.Deadline = 30 * simnet.Second

	var counted int64
	var cw *capture.Writer
	if record {
		w, err := capture.NewWriter(io.Discard, capture.Header{
			Clock:  capture.ClockVirtual,
			World:  procs,
			Seed:   seed,
			Device: "clan",
			Policy: cfg.Policy,
			Label:  "CG.overhead",
			Config: fmt.Sprintf("procs=%d policy=%s seed=%d rounds=%d msgBytes=%d",
				procs, cfg.Policy, seed, rounds, msgBytes),
		})
		if err != nil {
			return CaptureResult{}, err
		}
		cw = w
		cw.Attach(cfg.Obs)
	} else {
		sub := cfg.Obs.Subscribe(func(obs.Event) { counted++ })
		defer cfg.Obs.Unsubscribe(sub)
	}

	w, err := apps.Replay(apps.CG(), cfg, rounds, msgBytes)
	if err != nil {
		if cw != nil {
			cw.Close() // seal and detach; the Replay error is the one to report
		}
		return CaptureResult{}, err
	}
	res := CaptureResult{VirtualNS: int64(w.Elapsed)}
	res.Name = "capture-off/CG/np=8"
	res.Events = counted
	if cw != nil {
		if err := cw.Close(); err != nil {
			return CaptureResult{}, err
		}
		res.Name = "capture-on/CG/np=8"
		res.Events = cw.Events()
		res.BundleBytes = cw.Bytes()
	}
	return res, nil
}
