package bench

import (
	"fmt"

	"viampi/internal/mpi"
	"viampi/internal/obs"
	"viampi/internal/sweep"
)

// ExtEvict sweeps the on-demand manager's VI cap on the Berkeley VIA
// profile: a phased shift pattern touches every peer, so any cap below N-1
// forces the LRU evictor to recycle channels mid-run. The table shows the
// resource/latency trade the cap buys — pinned memory falls with the cap
// while message latency rises with the reconnect traffic it induces.
func ExtEvict(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-evict",
		Title: "Eviction extension: latency vs. VI cap (Berkeley VIA, shift pattern)",
		Columns: []string{"MaxVIs", "VIs created", "pinned/rank (kB)",
			"msg latency (us)", "evictions", "retries", "run time (ms)"},
		Notes: []string{"cap 0 = uncapped; each phase shifts to a fresh peer, so small caps evict every phase",
			"VIs created counts churn: every reconnect after an eviction creates a fresh VI"},
	}
	n := 16
	iters := 8
	if opt.Quick {
		n, iters = 8, 4
	}
	workload := func(r *mpi.Rank) {
		c := r.World()
		me := c.Rank()
		out := make([]byte, 256)
		in := make([]byte, 256)
		for ph := 1; ph < n; ph++ {
			dst := (me + ph) % n
			src := (me - ph + n) % n
			for i := 0; i < iters; i++ {
				if _, err := c.Sendrecv(dst, ph, out, src, ph, in); err != nil {
					r.Proc().Sim().Failf("shift: %v", err)
					return
				}
			}
		}
	}
	caps := []int{0, 8, 4, 2}
	jobs := make([]sweep.Job[[]string], len(caps))
	for i, maxVIs := range caps {
		maxVIs := maxVIs
		jobs[i] = sweep.Job[[]string]{
			ID: fmt.Sprintf("ext-evict/cap=%d", maxVIs),
			Run: func() ([]string, error) {
				cfg := baseConfig("bvia", OnDemand, n, opt.Seed)
				cfg.MaxVIs = maxVIs
				reg := obs.NewRegistry()
				if cfg.Obs == nil { // leave an Instrument-provided bus in place
					cfg.Obs = obs.NewBus()
				}
				obs.NewCollector(reg).Attach(cfg.Obs)
				w, err := mpi.Run(cfg, workload)
				if err != nil {
					return nil, fmt.Errorf("ext-evict cap=%d: %w", maxVIs, err)
				}
				lat := reg.Hist("msg.latency_ns", nil).Mean() / 1e3
				perRank := float64(w.TotalPinnedPeak()) / float64(n) / 1024
				return []string{fmt.Sprint(maxVIs), fmtF(w.AvgVIs()), fmtF(perRank),
					fmtF(lat),
					fmt.Sprint(reg.Counter("conn.evictions")),
					fmt.Sprint(reg.Counter("conn.retries")),
					fmt.Sprintf("%.3f", w.Elapsed.Seconds()*1e3)}, nil
			},
		}
	}
	rows, err := runGrid(opt, "ext-evict", jobs)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}
