package bench

// Scheduler-core workloads for the wall-clock measurement rail. Each
// workload exercises one hot path of the internal/simnet scheduler — timer
// wakes, park/wake handoffs, and callback churn — with no MPI or VIA model
// on top, so its event count and virtual elapsed time are pure functions of
// the workload shape. cmd/benchsnap times these against the host clock to
// produce BENCH_simcore.json; this package stays wall-clock-free because it
// is on the determinism-scanned side of the policy.

import (
	"fmt"

	"viampi/internal/simnet"
)

// SimCoreResult is one scheduler-core workload outcome. Events and
// VirtualNS are deterministic for a given shape; wall-clock timing is the
// caller's job.
type SimCoreResult struct {
	Name      string
	Events    uint64 // scheduler events dispatched
	VirtualNS int64  // virtual time consumed by the run
}

// SimCoreSleepCycle runs procs processes each doing cycles Sleep(1µs) calls:
// the timer-wake hot path (heap push + typed wake dispatch) with the
// self-wake fast path dominant at procs == 1 and cross-proc handoffs
// appearing as procs grows.
func SimCoreSleepCycle(procs, cycles int) (SimCoreResult, error) {
	s := simnet.New(1)
	for i := 0; i < procs; i++ {
		s.Spawn(fmt.Sprintf("sleeper%d", i), 0, func(p *simnet.Proc) {
			for c := 0; c < cycles; c++ {
				p.Sleep(simnet.Microsecond)
			}
		})
	}
	if err := s.Run(); err != nil {
		return SimCoreResult{}, err
	}
	return SimCoreResult{
		Name:      fmt.Sprintf("sleep-cycle/procs=%d/cycles=%d", procs, cycles),
		Events:    s.EventCount,
		VirtualNS: int64(s.Now()),
	}, nil
}

// SimCoreParkWake runs rounds ping-pong rounds between two processes using
// raw Park/Wake: the cross-goroutine handoff path (one buffered channel send
// per switch) with no timers involved beyond the wake events themselves.
func SimCoreParkWake(rounds int) (SimCoreResult, error) {
	s := simnet.New(1)
	var a, b *simnet.Proc
	a = s.Spawn("a", 0, func(p *simnet.Proc) {
		for r := 0; r < rounds; r++ {
			b.WakeAfter(simnet.Microsecond)
			p.Park()
		}
	})
	b = s.Spawn("b", 0, func(p *simnet.Proc) {
		for r := 0; r < rounds; r++ {
			p.Park()
			a.WakeAfter(simnet.Microsecond)
		}
	})
	if err := s.Run(); err != nil {
		return SimCoreResult{}, err
	}
	return SimCoreResult{
		Name:      fmt.Sprintf("park-wake/rounds=%d", rounds),
		Events:    s.EventCount,
		VirtualNS: int64(s.Now()),
	}, nil
}

// SimCoreEventChurn fires a self-rescheduling ladder of 64 callbacks with
// coprime-ish strides until events callbacks have run: the pure heap
// push/pop path (evFunc events, no processes at all).
func SimCoreEventChurn(events int) (SimCoreResult, error) {
	s := simnet.New(1)
	const ladder = 64
	fired := 0
	var arm func(stride simnet.Duration) func()
	arm = func(stride simnet.Duration) func() {
		var fn func()
		fn = func() {
			fired++
			if fired+ladder <= events {
				s.After(stride, fn)
			}
		}
		return fn
	}
	for i := 0; i < ladder; i++ {
		s.After(simnet.Duration(i+1), arm(simnet.Duration(i+1)))
	}
	if err := s.Run(); err != nil {
		return SimCoreResult{}, err
	}
	return SimCoreResult{
		Name:      fmt.Sprintf("event-churn/events=%d", events),
		Events:    s.EventCount,
		VirtualNS: int64(s.Now()),
	}, nil
}
