package bench

import (
	"fmt"
	"strings"

	"viampi/internal/mpi"
	"viampi/internal/simnet"
	"viampi/internal/sweep"
)

// extInitSizes is the ext-init sweep: past the paper's testbed, past the
// seed suite's 128 ranks, and past the cLAN NIC's 1024-VI hard limit —
// the last two sizes exist precisely to show static-p2p hitting the wall
// the paper predicts while on-demand keeps scaling.
var extInitSizes = []int{64, 256, 1024, 2048, 4096}

// extInitResult is one (size, mechanism) measurement.
type extInitResult struct {
	initMs    string // MPI_Init wall, virtual milliseconds
	firstUs   string // first ring Sendrecv on rank 0, virtual microseconds
	peakChans string // max over ranks of simultaneously live channels
}

// extInitRun boots an n-rank world under mech and measures the three
// ext-init quantities on a neighbour ring. Credits and the eager threshold
// are tuned down (4 × 112B buffers per VI) so the static mesh's pinned
// pools stay within host memory at thousand-rank sizes; both mechanisms
// get the same tuning so the comparison stays apples-to-apples. A static
// run that trips the NIC's per-port VI limit returns em-dashes — that hard
// stop is the datum, not a failure of the experiment.
func extInitRun(n int, mech Mechanism, seed int64) (extInitResult, error) {
	cfg := baseConfig("clan", mech, n, seed)
	cfg.CreditCount = 4
	cfg.EagerThreshold = 64
	var first simnet.Duration
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {
		c := r.World()
		me := c.Rank()
		out := []byte{byte(me)}
		in := make([]byte, 4)
		t0 := r.Proc().Sim().Now()
		if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
			r.Proc().Sim().Failf("ext-init ring: %v", err)
			return
		}
		if me == 0 {
			first = r.Proc().Sim().Now().Sub(t0)
		}
	})
	if err != nil {
		if strings.Contains(err.Error(), "VI limit") {
			return extInitResult{"—", "—", "—"}, nil
		}
		return extInitResult{}, err
	}
	peak := 0
	for _, rs := range w.Ranks {
		if rs.PeakChans > peak {
			peak = rs.PeakChans
		}
	}
	return extInitResult{
		initMs:    fmt.Sprintf("%.3f", w.AvgInit().Seconds()*1e3),
		firstUs:   fmt.Sprintf("%.2f", float64(first)/1e3),
		peakChans: fmt.Sprint(peak),
	}, nil
}

// InitBoot boots a procs-rank world with an empty main — MPI_Init plus
// MPI_Finalize and nothing else — and reports the scheduler event count and
// virtual elapsed time. It is the init-cost rail for BENCH_simcore.json:
// the deterministic fields pin that booting a world costs O(procs) events
// (the sleep-poll startup barrier made this superlinear under staggered
// arrival), and the wall-clock wrapper in benchsnap records what a
// thousand-rank boot costs this host. Credits and the eager threshold are
// tuned down as in ExtInit so static meshes stay within host memory.
func InitBoot(mech Mechanism, procs int) (SimCoreResult, error) {
	cfg := baseConfig("clan", mech, procs, 1)
	cfg.CreditCount = 4
	cfg.EagerThreshold = 64
	var sim *simnet.Sim
	w, err := mpi.Run(cfg, func(r *mpi.Rank) {
		if r.Rank() == 0 {
			sim = r.Proc().Sim()
		}
	})
	if err != nil {
		return SimCoreResult{}, err
	}
	return SimCoreResult{
		Name:      fmt.Sprintf("init-boot/%s/np=%d", mech.Name, procs),
		Events:    sim.EventCount,
		VirtualNS: int64(w.Elapsed),
	}, nil
}

// ExtInit sweeps MPI_Init cost, first-message latency, and peak per-rank
// channel-slot count for static-p2p vs. on-demand through 4096 processes.
// It is the experiment the sparse rank-state refactor exists to serve:
// static startup grows superlinearly and then hits the NIC's VI limit
// outright (the paper's "hard limit to scaling"), while on-demand init
// stays flat and its first messages pay a bounded connection-setup tax.
func ExtInit(opt Options) (*Table, error) {
	t := &Table{
		ID:    "ext-init",
		Title: "Init-cost extension: startup and first-message cost, static vs. on-demand, to 4096 procs",
		Columns: []string{"procs",
			"init static-p2p (ms)", "init on-demand (ms)",
			"first-msg static-p2p (us)", "first-msg on-demand (us)",
			"peak chans static-p2p", "peak chans on-demand"},
		Notes: []string{
			"ring workload; CreditCount=4, EagerThreshold=64 so dense pools fit host memory at 4096 ranks",
			"— marks static-p2p refused by the cLAN 1024-VI per-port limit (the paper's hard scaling wall)",
		},
	}
	sizes := extInitSizes
	if opt.Quick {
		sizes = []int{16, 64, 256}
	}
	mechs := []Mechanism{StaticPolling, OnDemand}
	var jobs []sweep.Job[extInitResult]
	for _, n := range sizes {
		for _, mech := range mechs {
			n, mech := n, mech
			jobs = append(jobs, sweep.Job[extInitResult]{
				ID: cellID("ext-init", "np", n, mech.Name),
				Run: func() (extInitResult, error) {
					r, err := extInitRun(n, mech, opt.Seed)
					if err != nil {
						return extInitResult{}, fmt.Errorf("ext-init %d/%s: %w", n, mech.Name, err)
					}
					return r, nil
				},
			})
		}
	}
	res, err := runGrid(opt, "ext-init", jobs)
	if err != nil {
		return nil, err
	}
	for i, n := range sizes {
		st, od := res[2*i], res[2*i+1]
		t.AddRow(fmt.Sprint(n),
			st.initMs, od.initMs,
			st.firstUs, od.firstUs,
			st.peakChans, od.peakChans)
	}
	return t, nil
}
