package bench

import (
	"bytes"
	"crypto/sha256"
	"testing"
)

// renderAll renders a table in every committed artifact format and returns
// the SHA-256 over the concatenation.
func renderAll(t *testing.T, tb *Table) [32]byte {
	t.Helper()
	var buf bytes.Buffer
	tb.Render(&buf)
	buf.WriteString("\x00csv\x00")
	tb.RenderCSV(&buf)
	buf.WriteString("\x00md\x00")
	tb.RenderMarkdown(&buf)
	return sha256.Sum256(buf.Bytes())
}

// TestMergeDeterminism is the byte-identity guarantee of the batch runner:
// a representative grid (the ext-evict cap sweep and the ext-init np grid)
// rendered from a -j1 run and a -j8 run must hash identically in every
// format. Completion order differs wildly between the two; the index-ordered
// merge must erase it.
func TestMergeDeterminism(t *testing.T) {
	for _, exp := range []struct {
		name string
		run  func(Options) (*Table, error)
	}{
		{"ext-evict", ExtEvict},
		{"ext-init", ExtInit},
	} {
		var digests [2][32]byte
		for i, workers := range []int{1, 8} {
			tb, err := exp.run(Options{Quick: true, Seed: 1, Workers: workers})
			if err != nil {
				t.Fatalf("%s at -j%d: %v", exp.name, workers, err)
			}
			digests[i] = renderAll(t, tb)
		}
		if digests[0] != digests[1] {
			t.Errorf("%s artifacts differ between -j1 and -j8: %x vs %x",
				exp.name, digests[0], digests[1])
		}
	}
}
