package bench

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// SVG rendering for experiment tables: each numeric column becomes a line
// series over the first column's values, so `figures -svg DIR` emits a
// publication-style chart per experiment next to the CSVs.
//
// Design notes (following the repo's charting conventions): one y-axis,
// categorical series colors assigned in fixed slot order (validated
// colorblind-safe set), 2px lines with 4px-radius markers carrying native
// <title> tooltips, recessive grid, a legend plus direct end-labels (the
// two low-contrast slots require visible labels), and all text in ink
// colors rather than series colors.

// seriesPalette is the fixed categorical slot order (light mode); series
// beyond the palette fold into gray rather than cycling hues.
var seriesPalette = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

const (
	svgSurface   = "#fcfcfb"
	svgInk       = "#0b0b0b"
	svgInkSoft   = "#52514e"
	svgGridColor = "#e7e6e2"
)

// RenderSVG writes the table as a line chart. Rows whose first column is
// non-numeric are treated as categorical x ticks; columns that fail to
// parse as numbers are skipped. It returns an error when fewer than one
// numeric series or two rows exist (a chart would misrepresent the data).
func (t *Table) RenderSVG(w io.Writer) error {
	type series struct {
		name string
		vals []float64
	}
	if len(t.Rows) < 2 || len(t.Columns) < 2 {
		return fmt.Errorf("bench: table %s too small to chart", t.ID)
	}
	// Determine which columns are numeric across every row.
	numeric := make([]bool, len(t.Columns))
	for ci := 1; ci < len(t.Columns); ci++ {
		ok := true
		for _, row := range t.Rows {
			if ci >= len(row) {
				ok = false
				break
			}
			if _, err := strconv.ParseFloat(strings.TrimSpace(row[ci]), 64); err != nil {
				ok = false
				break
			}
		}
		numeric[ci] = ok
	}
	var ss []series
	for ci := 1; ci < len(t.Columns); ci++ {
		if !numeric[ci] {
			continue
		}
		s := series{name: t.Columns[ci]}
		for _, row := range t.Rows {
			v, _ := strconv.ParseFloat(strings.TrimSpace(row[ci]), 64)
			s.vals = append(s.vals, v)
		}
		ss = append(ss, s)
	}
	if len(ss) == 0 {
		return fmt.Errorf("bench: table %s has no numeric series", t.ID)
	}

	// Chart geometry.
	const (
		width   = 760
		height  = 440
		left    = 70
		right   = 150 // room for direct end-labels
		top     = 56
		bottom  = 64
		plotW   = width - left - right
		plotH   = height - top - bottom
		markerR = 4
	)
	n := len(t.Rows)
	xAt := func(i int) float64 {
		if n == 1 {
			return left + plotW/2
		}
		return left + float64(i)*float64(plotW)/float64(n-1)
	}
	ymin, ymax := ss[0].vals[0], ss[0].vals[0]
	for _, s := range ss {
		for _, v := range s.vals {
			if v < ymin {
				ymin = v
			}
			if v > ymax {
				ymax = v
			}
		}
	}
	if ymin > 0 && ymin < ymax/3 {
		ymin = 0 // anchor near zero when the data allows an honest zero base
	}
	if ymax == ymin {
		ymax = ymin + 1
	}
	pad := (ymax - ymin) * 0.08
	ymaxP := ymax + pad
	yAt := func(v float64) float64 {
		return top + plotH - (v-ymin)/(ymaxP-ymin)*float64(plotH)
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d" font-family="system-ui, sans-serif">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="%s"/>`+"\n", width, height, svgSurface)
	fmt.Fprintf(&b, `<text x="%d" y="28" font-size="15" font-weight="600" fill="%s">%s</text>`+"\n",
		left, svgInk, xmlEscape(t.Title))

	// Recessive grid + y ticks (5 divisions).
	for i := 0; i <= 5; i++ {
		v := ymin + (ymaxP-ymin)*float64(i)/5
		y := yAt(v)
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="1"/>`+"\n",
			left, y, left+plotW, y, svgGridColor)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			left-8, y+4, svgInkSoft, fmtTick(v))
	}
	// X ticks: thin out to at most 12 labels.
	step := 1
	for n/step > 12 {
		step++
	}
	for i := 0; i < n; i += step {
		x := xAt(i)
		fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			x, top+plotH+20, svgInkSoft, xmlEscape(t.Rows[i][0]))
	}
	// Axis titles.
	fmt.Fprintf(&b, `<text x="%.1f" y="%d" font-size="12" fill="%s" text-anchor="middle">%s</text>`+"\n",
		float64(left)+plotW/2, top+plotH+44, svgInkSoft, xmlEscape(t.Columns[0]))

	// Series.
	for si, s := range ss {
		color := "#8a8984" // fold-to-gray beyond the fixed slots, never a cycled hue
		if si < len(seriesPalette) {
			color = seriesPalette[si]
		}
		var pts []string
		for i, v := range s.vals {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xAt(i), yAt(v)))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round"/>`+"\n",
			strings.Join(pts, " "), color)
		for i, v := range s.vals {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%d" fill="%s" stroke="%s" stroke-width="2"><title>%s — %s: %s</title></circle>`+"\n",
				xAt(i), yAt(v), markerR, color, svgSurface,
				xmlEscape(t.Rows[i][0]), xmlEscape(s.name), fmtTick(v))
		}
		// Direct end-label in ink, with a colored dash carrying identity
		// (required relief for the low-contrast palette slots).
		lastY := yAt(s.vals[len(s.vals)-1]) + 4
		lastY += float64(si%3-1) * 3 // nudge to reduce collisions
		fmt.Fprintf(&b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="%s" stroke-width="3"/>`+"\n",
			left+plotW+6, lastY-4, left+plotW+18, lastY-4, color)
		fmt.Fprintf(&b, `<text x="%d" y="%.1f" font-size="11" fill="%s">%s</text>`+"\n",
			left+plotW+22, lastY, svgInk, xmlEscape(s.name))
	}

	// Legend row (always present for >= 2 series).
	if len(ss) >= 2 {
		x := left
		for si, s := range ss {
			color := "#8a8984"
			if si < len(seriesPalette) {
				color = seriesPalette[si]
			}
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" rx="2" fill="%s"/>`+"\n", x, 36, color)
			fmt.Fprintf(&b, `<text x="%d" y="45" font-size="11" fill="%s">%s</text>`+"\n",
				x+14, svgInkSoft, xmlEscape(s.name))
			x += 16 + 7*len(s.name) + 14
		}
	}
	fmt.Fprintln(&b, `</svg>`)
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtTick(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
