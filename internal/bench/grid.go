package bench

import (
	"fmt"

	"viampi/internal/sweep"
)

// This file adapts the experiments to the internal/sweep batch runner: every
// grid experiment enumerates its cells as an indexed job list, fans them out
// over the bounded worker pool, and assembles rows from the index-ordered
// results. Each cell boots its own simulated world (a pure function of its
// Config), so cells are hermetic by construction and the rendered tables are
// byte-identical at every -j.

// sweepOpts carries the driver's worker count and progress sink into the
// batch runner, naming the batch after the experiment.
func (o Options) sweepOpts(label string) sweep.Options {
	return sweep.Options{Workers: o.Workers, Progress: o.Progress, Label: label}
}

// runGrid executes the jobs over the batch runner and returns their values
// in job order, or the first error in job order.
func runGrid[T any](opt Options, label string, jobs []sweep.Job[T]) ([]T, error) {
	return sweep.Values(sweep.Run(opt.sweepOpts(label), jobs))
}

// gridCells runs one job per (row, column) cell of a table grid and returns
// the rendered cells as [row][col]. id names a cell for panic errors and the
// progress line; run computes it.
func gridCells(opt Options, label string, rows, cols int,
	id func(r, c int) string, run func(r, c int) (string, error)) ([][]string, error) {
	jobs := make([]sweep.Job[string], 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			r, c := r, c
			jobs = append(jobs, sweep.Job[string]{
				ID:  id(r, c),
				Run: func() (string, error) { return run(r, c) },
			})
		}
	}
	vals, err := runGrid(opt, label, jobs)
	if err != nil {
		return nil, err
	}
	out := make([][]string, rows)
	for r := 0; r < rows; r++ {
		out[r] = vals[r*cols : (r+1)*cols]
	}
	return out, nil
}

// cellID renders the conventional job ID for a grid cell:
// "<experiment>/<axis>=<value>/<mechanism>".
func cellID(exp, axis string, val any, mech string) string {
	return fmt.Sprintf("%s/%s=%v/%s", exp, axis, val, mech)
}
