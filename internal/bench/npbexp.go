package bench

import (
	"fmt"

	"viampi/internal/mpi"
	"viampi/internal/npb"
	"viampi/internal/sweep"
)

// npbKey memoizes NPB runs so Table 3 reuses the Figure 6/7 results.
type npbKey struct {
	device string
	bench  string
	class  npb.Class
	procs  int
	mech   string
	quick  bool
	seed   int64
}

var npbCache = map[npbKey]float64{}

// npbCompute executes one NPB proxy run and returns the benchmark region
// time in seconds. It never touches npbCache, so it is safe to run from
// sweep workers.
func npbCompute(device, benchName string, class npb.Class, procs int, mech Mechanism, opt Options) (float64, error) {
	k, err := npb.ByName(benchName)
	if err != nil {
		return 0, err
	}
	cfg := baseConfig(device, mech, procs, opt.Seed)
	res, _, err := npb.Run(k, class, cfg)
	if err != nil {
		return 0, fmt.Errorf("%s.%c.%d on %s/%s: %w", benchName, class, procs, device, mech.Name, err)
	}
	if !res.Verified {
		return 0, fmt.Errorf("%s.%c.%d on %s/%s: verification failed (%d)",
			benchName, class, procs, device, mech.Name, res.Failures)
	}
	return res.TimeSec, nil
}

// runNPB executes (or recalls) one NPB proxy run and returns the benchmark
// region time in seconds. Grid experiments prefill the cache with npbEnsure
// so their row-assembly calls here are pure lookups.
func runNPB(device, benchName string, class npb.Class, procs int, mech Mechanism, opt Options) (float64, error) {
	key := npbKey{device, benchName, class, procs, mech.Name, opt.Quick, opt.Seed}
	if v, ok := npbCache[key]; ok {
		return v, nil
	}
	v, err := npbCompute(device, benchName, class, procs, mech, opt)
	if err != nil {
		return 0, err
	}
	npbCache[key] = v
	return v, nil
}

// npbSpec names one (device, cases, mechanisms) block of the NPB matrix.
type npbSpec struct {
	device string
	cases  []npbCase
	mechs  []Mechanism
}

// npbEnsure computes every missing cell of the given NPB blocks over the
// batch runner and memoizes the results. Workers never write npbCache — each
// job returns its region time and the index-ordered merge stores them
// sequentially — so the unguarded map stays race-free.
func npbEnsure(opt Options, label string, specs ...npbSpec) error {
	var keys []npbKey
	var jobs []sweep.Job[float64]
	for _, sp := range specs {
		for _, cs := range sp.cases {
			for _, m := range sp.mechs {
				key := npbKey{sp.device, cs.bench, cs.class, cs.procs, m.Name, opt.Quick, opt.Seed}
				if _, ok := npbCache[key]; ok {
					continue
				}
				sp, cs, m := sp, cs, m
				keys = append(keys, key)
				jobs = append(jobs, sweep.Job[float64]{
					ID: fmt.Sprintf("%s/%s/%s/%s", label, sp.device, cs.label(), m.Name),
					Run: func() (float64, error) {
						return npbCompute(sp.device, cs.bench, cs.class, cs.procs, m, opt)
					},
				})
			}
		}
	}
	vals, err := runGrid(opt, label, jobs)
	if err != nil {
		return err
	}
	for i, v := range vals {
		npbCache[keys[i]] = v
	}
	return nil
}

// npbCase is one benchmark.class.procs cell of Figures 6-7 / Table 3.
type npbCase struct {
	bench string
	class npb.Class
	procs int
}

func (c npbCase) label() string { return fmt.Sprintf("%s.%c.%d", c.bench, c.class, c.procs) }

// clanCases lists the paper's Figure 6 / Table 3 (cLAN) matrix.
func clanCases(opt Options) []npbCase {
	if opt.Quick {
		return []npbCase{
			{"MG", npb.ClassS, 8}, {"IS", npb.ClassS, 8}, {"CG", npb.ClassS, 8},
			{"SP", npb.ClassS, 9}, {"BT", npb.ClassS, 9},
		}
	}
	return []npbCase{
		{"CG", npb.ClassA, 16}, {"CG", npb.ClassB, 16}, {"CG", npb.ClassA, 32}, {"CG", npb.ClassB, 32}, {"CG", npb.ClassC, 32},
		{"MG", npb.ClassA, 16}, {"MG", npb.ClassB, 16}, {"MG", npb.ClassA, 32}, {"MG", npb.ClassB, 32}, {"MG", npb.ClassC, 32},
		{"IS", npb.ClassA, 16}, {"IS", npb.ClassB, 16}, {"IS", npb.ClassA, 32}, {"IS", npb.ClassB, 32}, {"IS", npb.ClassC, 32},
		{"SP", npb.ClassA, 16}, {"SP", npb.ClassB, 16},
		{"BT", npb.ClassA, 16}, {"BT", npb.ClassB, 16},
	}
}

// bviaCases lists the paper's Figure 7 / Table 3 (Berkeley VIA) matrix.
// Berkeley VIA runs at most one process per node, so 8 is the ceiling.
func bviaCases(opt Options) []npbCase {
	if opt.Quick {
		return []npbCase{{"IS", npb.ClassS, 4}, {"CG", npb.ClassS, 4}, {"EP", npb.ClassS, 4}}
	}
	return []npbCase{
		{"IS", npb.ClassA, 8}, {"IS", npb.ClassB, 8},
		{"CG", npb.ClassA, 8}, {"CG", npb.ClassB, 8},
		{"EP", npb.ClassA, 8},
		{"CG", npb.ClassA, 4}, {"IS", npb.ClassA, 4},
		{"BT", npb.ClassA, 4}, {"SP", npb.ClassA, 4},
	}
}

// Fig6 regenerates Figure 6: NPB times on cLAN under static-spinwait,
// on-demand and static-polling, normalized to static-polling.
func Fig6(opt Options) (*Table, error) {
	t := &Table{
		ID:    "fig6",
		Title: "NPB normalized time on cLAN (static-spinwait / on-demand / static-polling)",
		Columns: []string{"case", "spinwait (norm)", "on-demand (norm)", "polling (norm)",
			"polling (s)"},
		Notes: []string{"paper: on-demand within ~2% of static-polling; spinwait worst on collective-heavy codes"},
	}
	mechs := []Mechanism{StaticSpinwait, OnDemand, StaticPolling}
	if err := npbEnsure(opt, "fig6", npbSpec{"clan", clanCases(opt), mechs}); err != nil {
		return nil, err
	}
	for _, cs := range clanCases(opt) {
		var secs [3]float64
		for i, m := range mechs {
			v, err := runNPB("clan", cs.bench, cs.class, cs.procs, m, opt)
			if err != nil {
				return nil, err
			}
			secs[i] = v
		}
		base := secs[2]
		t.AddRow(cs.label(),
			fmtF(secs[0]/base), fmtF(secs[1]/base), fmtF(secs[2]/base),
			fmtF(base))
	}
	return t, nil
}

// Fig7 regenerates Figure 7: NPB times on Berkeley VIA under on-demand and
// static-polling, normalized to static-polling.
func Fig7(opt Options) (*Table, error) {
	t := &Table{
		ID:      "fig7",
		Title:   "NPB normalized time on Berkeley VIA (on-demand / static-polling)",
		Columns: []string{"case", "on-demand (norm)", "polling (norm)", "polling (s)"},
		Notes:   []string{"paper: on-demand faster than static on BVIA (fewer VIs, less doorbell scanning)"},
	}
	if err := npbEnsure(opt, "fig7",
		npbSpec{"bvia", bviaCases(opt), []Mechanism{OnDemand, StaticPolling}}); err != nil {
		return nil, err
	}
	for _, cs := range bviaCases(opt) {
		od, err := runNPB("bvia", cs.bench, cs.class, cs.procs, OnDemand, opt)
		if err != nil {
			return nil, err
		}
		st, err := runNPB("bvia", cs.bench, cs.class, cs.procs, StaticPolling, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(cs.label(), fmtF(od/st), fmtF(1.0), fmtF(st))
	}
	return t, nil
}

// Table3 regenerates Table 3: actual CPU times of the NPB runs.
func Table3(opt Options) (*Table, error) {
	t := &Table{
		ID:      "table3",
		Title:   "Actual NPB times (seconds)",
		Columns: []string{"device", "case", "static-spinwait", "on-demand", "static-polling"},
	}
	if err := npbEnsure(opt, "table3",
		npbSpec{"clan", clanCases(opt), []Mechanism{StaticSpinwait, OnDemand, StaticPolling}},
		npbSpec{"bvia", bviaCases(opt), []Mechanism{OnDemand, StaticPolling}}); err != nil {
		return nil, err
	}
	for _, cs := range clanCases(opt) {
		sw, err := runNPB("clan", cs.bench, cs.class, cs.procs, StaticSpinwait, opt)
		if err != nil {
			return nil, err
		}
		od, err := runNPB("clan", cs.bench, cs.class, cs.procs, OnDemand, opt)
		if err != nil {
			return nil, err
		}
		sp, err := runNPB("clan", cs.bench, cs.class, cs.procs, StaticPolling, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow("cLAN", cs.label(), fmtF(sw), fmtF(od), fmtF(sp))
	}
	for _, cs := range bviaCases(opt) {
		od, err := runNPB("bvia", cs.bench, cs.class, cs.procs, OnDemand, opt)
		if err != nil {
			return nil, err
		}
		sp, err := runNPB("bvia", cs.bench, cs.class, cs.procs, StaticPolling, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow("BVIA", cs.label(), "-", fmtF(od), fmtF(sp))
	}
	return t, nil
}

// Table2 regenerates Table 2: per-process VI counts and resource
// utilization under static and on-demand connection management, for the
// microbenchmarks and NPB programs the paper lists.
func Table2(opt Options) (*Table, error) {
	t := &Table{
		ID:    "table2",
		Title: "Average VIs and resource utilization per process (static vs on-demand)",
		Columns: []string{"app", "size", "VIs static", "VIs on-demand",
			"util static", "util on-demand", "pinned static (kB)", "pinned on-demand (kB)"},
	}
	type workload struct {
		name  string
		sizes []int
		main  func(procs int) func(r *mpi.Rank)
		kern  string // NPB kernel name, if an NPB workload
		class npb.Class
	}
	iters := 100
	npcls := npb.ClassW
	if opt.Quick {
		iters = 10
		npcls = npb.ClassS
	}
	micro := func(body func(c *mpi.Comm, r *mpi.Rank) error) func(procs int) func(r *mpi.Rank) {
		return func(procs int) func(r *mpi.Rank) {
			return func(r *mpi.Rank) {
				c := r.World()
				for i := 0; i < iters; i++ {
					if err := body(c, r); err != nil {
						r.Proc().Sim().Failf("table2 workload: %v", err)
						return
					}
				}
			}
		}
	}
	sizes := []int{16, 32}
	sqSizes := []int{16, 36}
	if opt.Quick {
		sizes = []int{8, 16}
		sqSizes = []int{9, 16}
	}
	workloads := []workload{
		{name: "Ring", sizes: sizes, main: func(procs int) func(r *mpi.Rank) {
			return func(r *mpi.Rank) {
				c := r.World()
				me, n := c.Rank(), c.Size()
				out := make([]byte, 64)
				in := make([]byte, 64)
				for i := 0; i < iters; i++ {
					if _, err := c.Sendrecv((me+1)%n, 0, out, (me+n-1)%n, 0, in); err != nil {
						r.Proc().Sim().Failf("ring: %v", err)
						return
					}
				}
			}
		}},
		{name: "Barrier", sizes: sizes, main: micro(func(c *mpi.Comm, r *mpi.Rank) error {
			return c.Barrier()
		})},
		{name: "Allreduce", sizes: sizes, main: micro(func(c *mpi.Comm, r *mpi.Rank) error {
			out := make([]byte, 64)
			return c.Allreduce(make([]byte, 64), out, mpi.SumF64)
		})},
		{name: "Alltoall", sizes: sizes, main: func(procs int) func(r *mpi.Rank) {
			return func(r *mpi.Rank) {
				c := r.World()
				n := c.Size()
				for i := 0; i < iters/10+1; i++ {
					if err := c.Alltoall(make([]byte, 64*n), make([]byte, 64*n), 64); err != nil {
						r.Proc().Sim().Failf("alltoall: %v", err)
						return
					}
				}
			}
		}},
		{name: "Allgather", sizes: sizes, main: func(procs int) func(r *mpi.Rank) {
			return func(r *mpi.Rank) {
				c := r.World()
				n := c.Size()
				for i := 0; i < iters/10+1; i++ {
					if err := c.Allgather(make([]byte, 64), make([]byte, 64*n)); err != nil {
						r.Proc().Sim().Failf("allgather: %v", err)
						return
					}
				}
			}
		}},
		// llcbench-style bcast alternates MPI_Bcast with a barrier.
		{name: "Bcast", sizes: sizes, main: micro(func(c *mpi.Comm, r *mpi.Rank) error {
			if err := c.Bcast(make([]byte, 64), 0); err != nil {
				return err
			}
			return c.Barrier()
		})},
		{name: "CG", sizes: sizes, kern: "CG", class: npcls},
		{name: "MG", sizes: sizes, kern: "MG", class: npcls},
		{name: "IS", sizes: sizes, kern: "IS", class: npcls},
		{name: "SP", sizes: sqSizes, kern: "SP", class: npcls},
		{name: "BT", sizes: sqSizes, kern: "BT", class: npcls},
		{name: "EP", sizes: sizes, kern: "EP", class: npcls},
	}

	var jobs []sweep.Job[[]string]
	for _, wl := range workloads {
		for _, n := range wl.sizes {
			wl, n := wl, n
			jobs = append(jobs, sweep.Job[[]string]{
				ID: fmt.Sprintf("table2/%s/np=%d", wl.name, n),
				Run: func() ([]string, error) {
					var worlds [2]*mpi.World
					for i, mech := range []Mechanism{StaticPolling, OnDemand} {
						cfg := baseConfig("clan", mech, n, opt.Seed)
						var w *mpi.World
						var err error
						if wl.kern != "" {
							k, kerr := npb.ByName(wl.kern)
							if kerr != nil {
								return nil, kerr
							}
							_, w, err = npb.Run(k, wl.class, cfg)
						} else {
							w, err = mpi.Run(cfg, wl.main(n))
						}
						if err != nil {
							return nil, fmt.Errorf("table2 %s.%d/%s: %w", wl.name, n, mech.Name, err)
						}
						worlds[i] = w
					}
					st, od := worlds[0], worlds[1]
					return []string{wl.name, fmt.Sprint(n),
						fmtF(st.AvgVIs()), fmtF(od.AvgVIs()),
						fmtF(st.AvgUtilization()), fmtF(od.AvgUtilization()),
						fmtF(float64(st.TotalPinnedPeak()) / float64(n) / 1024),
						fmtF(float64(od.TotalPinnedPeak()) / float64(n) / 1024)}, nil
				},
			})
		}
	}
	rows, err := runGrid(opt, "table2", jobs)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}
