package viampi

// Smoke tests that build and run every example binary with small arguments,
// guarding the examples against rot. They exec the go tool, so they skip
// under -short.

import (
	"os/exec"
	"strings"
	"testing"
)

func runExample(t *testing.T, path string, args ...string) string {
	t.Helper()
	if testing.Short() {
		t.Skip("examples smoke runs in full mode only")
	}
	cmd := exec.Command("go", append([]string{"run", path}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s: %v\n%s", path, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	out := runExample(t, "./examples/quickstart")
	if !strings.Contains(out, "ondemand") || !strings.Contains(out, "utilization: 1.00") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExampleStencil(t *testing.T) {
	out := runExample(t, "./examples/stencil", "-np", "9", "-sweeps", "2")
	if !strings.Contains(out, "on-demand touches only neighbours") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExampleAnysource(t *testing.T) {
	out := runExample(t, "./examples/anysource")
	if !strings.Contains(out, "master VIs: 9") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExampleNpbmini(t *testing.T) {
	out := runExample(t, "./examples/npbmini", "-bench", "EP", "-class", "S", "-np", "4")
	if !strings.Contains(out, "verified true") || strings.Contains(out, "verified false") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExampleHeat(t *testing.T) {
	out := runExample(t, "./examples/heat", "-np", "4", "-tile", "8", "-iters", "5")
	if !strings.Contains(out, "final residual") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestExampleTcpring(t *testing.T) {
	out := runExample(t, "./examples/tcpring", "-np", "4", "-laps", "5")
	if !strings.Contains(out, "ondemand") || !strings.Contains(out, "static") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestToolVibench(t *testing.T) {
	out := runExample(t, "./cmd/vibench", "-device", "clan", "-maxvis", "4")
	if !strings.Contains(out, "peer connect") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestToolMpirunSim(t *testing.T) {
	out := runExample(t, "./cmd/mpirun-sim", "-np", "4", "-matrix", "-profile", "EP", "S")
	if !strings.Contains(out, "verified           : true") ||
		!strings.Contains(out, "communication matrix") ||
		!strings.Contains(out, "Allreduce") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestToolMicrobench(t *testing.T) {
	out := runExample(t, "./cmd/microbench", "-op", "barrier", "-procs", "4", "-iters", "10")
	if !strings.Contains(out, "barrier on 4 procs") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}
